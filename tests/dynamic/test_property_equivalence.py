"""Equivalence property suite: incremental maintenance ≡ full rebuild.

For randomized edit scripts over randomized graphs, after ``apply_updates``
(forced down the incremental path) everything the engine maintains must be
*identical* to recomputing from scratch on the mutated graph:

* trussness and supports ≡ a fresh ``truss_decomposition`` / ``edge_support``;
* every pre-computed record (keyword bit vectors, support upper bounds,
  per-threshold score bounds, centre trussness) ≡ a fresh ``precompute`` —
  bit-for-bit, floats included;
* TopL-ICDE and DTopL-ICDE answers through the patched tree ≡ answers through
  a freshly built tree.

The quick tier runs on every CI push; the 200-script bulk tier is marked
``slow`` for the nightly run (the repo-level tier-1 command still executes
it).  One hypothesis-driven test varies the graph distribution itself.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import random_update_batch
from repro.graph.generators import erdos_renyi_graph
from repro.index.precompute import precompute
from repro.index.tree import build_tree_index
from repro.query.dtopl import DTopLProcessor
from repro.query.params import make_dtopl_query, make_topl_query
from repro.query.topl import TopLProcessor
from repro.truss.decomposition import truss_decomposition
from repro.truss.support import edge_support

from tests.dynamic.strategies_dynamic import (
    KEYWORD_POOL,
    dynamic_config,
    dynamic_scenarios,
)

_CONFIG = dynamic_config(
    max_radius=2, thresholds=(0.1, 0.3), fanout=3, leaf_capacity=4
)


def _random_scenario(seed: int):
    """Seeded random graph + engine + edit script (deterministic per seed)."""
    rng = random.Random(seed)
    num_vertices = rng.randint(8, 18)
    graph = erdos_renyi_graph(
        num_vertices,
        edge_probability=rng.uniform(0.2, 0.55),
        rng=seed,
        weight_range=(0.15, 0.85),
        name=f"equiv-{seed}",
    )
    for vertex in list(graph.vertices()):
        graph.set_keywords(vertex, rng.sample(KEYWORD_POOL, rng.randint(1, 3)))
    engine = InfluentialCommunityEngine.build(graph, config=_CONFIG, validate=False)
    batch = random_update_batch(
        graph,
        rng.randint(1, 10),
        rng=rng,
        insert_ratio=rng.uniform(0.3, 0.7),
        grow_probability=0.15,
        keyword_pool=KEYWORD_POOL,
    )
    return rng, graph, engine, batch


def _fingerprint(result):
    return tuple((c.vertices, round(c.score, 9)) for c in result)


def _assert_records_equal(patched, fresh, seed) -> None:
    assert set(patched) == set(fresh), f"seed {seed}: vertex cover differs"
    for vertex in patched:
        ours, reference = patched[vertex], fresh[vertex]
        assert ours.keyword_bitvector == reference.keyword_bitvector, (seed, vertex)
        assert ours.center_trussness == reference.center_trussness, (seed, vertex)
        assert set(ours.per_radius) == set(reference.per_radius), (seed, vertex)
        for radius in ours.per_radius:
            mine, theirs = ours.per_radius[radius], reference.per_radius[radius]
            assert mine.bitvector == theirs.bitvector, (seed, vertex, radius)
            assert mine.support_upper_bound == theirs.support_upper_bound, (
                seed, vertex, radius,
            )
            assert mine.score_bounds == theirs.score_bounds, (seed, vertex, radius)


def _check_equivalence(seed: int) -> None:
    rng, graph, engine, batch = _random_scenario(seed)
    report = engine.apply_updates(batch, damage_threshold=1.0)
    assert report.mode in ("incremental", "noop"), (seed, report.mode)

    # 1. trussness and supports.
    fresh_truss = truss_decomposition(graph)
    state = engine._truss_state
    if state is not None:
        assert state.trussness == fresh_truss.edge_trussness, f"seed {seed}"
        assert state.supports == edge_support(graph), f"seed {seed}"
    assert engine.index.precomputed.global_edge_support == edge_support(graph)

    # 2. pre-computed records, bit for bit.
    fresh_pre = precompute(
        graph,
        max_radius=_CONFIG.max_radius,
        thresholds=_CONFIG.thresholds,
        num_bits=_CONFIG.num_bits,
    )
    _assert_records_equal(
        engine.index.precomputed.vertex_aggregates,
        fresh_pre.vertex_aggregates,
        seed,
    )

    # 3. TopL / DTopL answers through patched vs freshly built trees.
    fresh_index = build_tree_index(
        graph,
        precomputed=fresh_pre,
        fanout=_CONFIG.fanout,
        leaf_capacity=_CONFIG.leaf_capacity,
    )
    for _ in range(2):
        keywords = frozenset(rng.sample(KEYWORD_POOL, rng.randint(1, 2)))
        topl_query = make_topl_query(
            keywords,
            k=rng.choice((3, 4)),
            radius=rng.choice((1, 2)),
            theta=rng.choice((0.1, 0.3)),
            top_l=rng.choice((2, 3)),
        )
        patched = TopLProcessor(graph, index=engine.index).query(topl_query)
        rebuilt = TopLProcessor(graph, index=fresh_index).query(topl_query)
        assert _fingerprint(patched) == _fingerprint(rebuilt), (seed, topl_query)
    dtopl_query = make_dtopl_query(
        keywords, k=3, radius=2, theta=0.1, top_l=2, candidate_factor=2
    )
    patched = DTopLProcessor(graph, index=engine.index).query(dtopl_query)
    rebuilt = DTopLProcessor(graph, index=fresh_index).query(dtopl_query)
    assert _fingerprint(patched) == _fingerprint(rebuilt), (seed, dtopl_query)


@pytest.mark.parametrize("seed", range(30))
def test_equivalence_quick(seed):
    """PR-scale tier: 30 randomized edit scripts."""
    _check_equivalence(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(30, 230))
def test_equivalence_nightly(seed):
    """Nightly-scale tier: 200 further randomized edit scripts."""
    _check_equivalence(seed)


@pytest.mark.parametrize("seed", range(12))
def test_rebuild_path_equivalence(seed):
    """The damage-fallback path must agree with the incremental path."""
    _, graph, engine, batch = _random_scenario(1000 + seed)
    report = engine.apply_updates(batch, damage_threshold=0.01)
    assert report.mode in ("rebuild", "noop")
    fresh = InfluentialCommunityEngine.build(
        graph.copy(), config=_CONFIG, validate=False
    )
    query = make_topl_query(
        frozenset(KEYWORD_POOL[:2]), k=3, radius=2, theta=0.1, top_l=3
    )
    assert _fingerprint(engine.topl(query)) == _fingerprint(fresh.topl(query))


@settings(max_examples=25, deadline=None)
@given(scenario=dynamic_scenarios())
def test_hypothesis_truss_equivalence(scenario):
    """Hypothesis tier: arbitrary small graphs + scripts, trussness exactness."""
    graph, state, batch = scenario
    state.apply(batch)
    fresh = truss_decomposition(graph)
    assert state.trussness == fresh.edge_trussness
    assert state.supports == edge_support(graph)
    assert state.decomposition().vertex_trussness == fresh.vertex_trussness
