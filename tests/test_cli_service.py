"""CLI tests for the service-era surface: --version, stats --index, gateway."""

from __future__ import annotations

import json
import re

import pytest

from repro import __version__
from repro.cli import build_parser, main
from repro.graph.datasets import uni
from repro.graph.io import save_graph_json


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-service") / "graph.json"
    save_graph_json(uni(num_vertices=120, rng=5), path)
    return str(path)


@pytest.fixture(scope="module")
def index_file(tmp_path_factory, graph_file):
    path = tmp_path_factory.mktemp("cli-service-index") / "graph.index.json"
    assert main(["build-index", graph_file, "--out", str(path), "--max-radius", "2"]) == 0
    return str(path)


class TestVersionFlag:
    def test_version_exits_zero_and_prints_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert __version__ in output

    def test_version_matches_pyproject(self):
        """__version__ is sourced from the packaging metadata, not hardcoded."""
        from pathlib import Path

        import repro

        pyproject = (
            Path(repro.__file__).resolve().parent.parent.parent / "pyproject.toml"
        )
        declared = re.search(
            r'^version = "([^"]+)"', pyproject.read_text(), re.MULTILINE
        ).group(1)
        assert __version__ == declared


class TestStatsDescribe:
    def test_stats_with_index_prints_engine_diagnostics(
        self, graph_file, index_file, capsys
    ):
        assert main(["stats", graph_file, "--index", index_file]) == 0
        output = capsys.readouterr().out
        assert "engine diagnostics:" in output
        document = json.loads(output.split("engine diagnostics:")[1])
        # The same describe() document /v1/health serves.
        assert document["backend"] == "reference"
        assert document["epoch"] == 0
        assert document["index_schema_version"] == 1
        assert document["index"]["max_radius"] == 2

    def test_stats_without_index_unchanged(self, graph_file, capsys):
        assert main(["stats", graph_file]) == 0
        output = capsys.readouterr().out
        assert "graph statistics" in output
        assert "engine diagnostics:" not in output


class TestGatewayParser:
    def test_gateway_arguments(self):
        args = build_parser().parse_args(
            ["gateway", "graph.json", "--port", "9000", "--session", "main"]
        )
        assert args.command == "gateway"
        assert args.port == 9000
        assert args.session == "main"

    def test_gateway_graph_is_optional(self):
        args = build_parser().parse_args(["gateway"])
        assert args.graph is None


class TestServiceEnvelopeVersion:
    def test_every_response_reports_api_version(self, graph_file):
        from repro.graph.io import load_graph_json, graph_to_dict
        from repro.service.facade import CommunityService
        from repro.service.schema import BuildRequest

        service = CommunityService()
        response = service.build(
            BuildRequest(
                session="v",
                graph=graph_to_dict(load_graph_json(graph_file)),
                config={"max_radius": 1},
            )
        )
        assert response.api_version == __version__
        assert response.to_json()["api_version"] == __version__
