"""Property-based tests for the MIA propagation model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.influence.mia import maximum_influence_paths, user_to_user_propagation
from repro.influence.propagation import community_propagation, influential_score

from tests.property.strategies import social_networks


@settings(max_examples=40, deadline=None)
@given(graph=social_networks(connected=True))
def test_upp_values_are_probabilities(graph):
    source = next(iter(graph.vertices()))
    probabilities = maximum_influence_paths(graph, source)
    assert probabilities[source] == 1.0
    assert all(0.0 < value <= 1.0 for value in probabilities.values())


@settings(max_examples=40, deadline=None)
@given(graph=social_networks(connected=True), threshold=st.sampled_from([0.0, 0.1, 0.3, 0.6]))
def test_threshold_truncation_is_exact(graph, threshold):
    """Truncated propagation returns exactly the >= threshold subset of the full run."""
    source = next(iter(graph.vertices()))
    full = maximum_influence_paths(graph, source, threshold=0.0)
    truncated = maximum_influence_paths(graph, source, threshold=threshold)
    expected = {v: p for v, p in full.items() if p >= threshold}
    assert set(truncated) == set(expected)
    for vertex, probability in expected.items():
        assert truncated[vertex] == pytest.approx(probability)


@settings(max_examples=40, deadline=None)
@given(graph=social_networks(connected=True))
def test_upp_dominates_single_edge_probability(graph):
    """The best path to a neighbour is at least as good as the direct edge."""
    source = next(iter(graph.vertices()))
    probabilities = maximum_influence_paths(graph, source)
    for neighbour in graph.neighbors(source):
        assert probabilities[neighbour] >= graph.probability(source, neighbour) - 1e-12


@settings(max_examples=30, deadline=None)
@given(graph=social_networks(connected=True), theta=st.sampled_from([0.05, 0.2, 0.4]))
def test_cpp_dominates_member_upp(graph, theta):
    """cpp(g, v) >= upp(u, v) for every member u of the seed community."""
    vertices = list(graph.vertices())
    seeds = frozenset(vertices[: max(1, len(vertices) // 3)])
    influenced = community_propagation(graph, seeds, threshold=theta)
    sample_seed = next(iter(seeds))
    member_probabilities = maximum_influence_paths(graph, sample_seed, threshold=theta)
    for vertex, probability in member_probabilities.items():
        if probability >= theta:
            assert influenced.cpp_of(vertex) >= probability - 1e-9


@settings(max_examples=30, deadline=None)
@given(graph=social_networks(connected=True))
def test_score_monotone_in_threshold(graph):
    """Raising theta can only shrink the influenced community and its score."""
    vertices = list(graph.vertices())
    seeds = frozenset(vertices[:2])
    scores = [influential_score(graph, seeds, theta) for theta in (0.05, 0.2, 0.5)]
    assert scores[0] >= scores[1] >= scores[2]


@settings(max_examples=30, deadline=None)
@given(graph=social_networks(connected=True))
def test_score_monotone_in_seed_set(graph):
    """Adding seed vertices never decreases the influential score."""
    vertices = list(graph.vertices())
    small = frozenset(vertices[:1])
    large = frozenset(vertices[: max(2, len(vertices) // 2)])
    assert influential_score(graph, large, 0.1) >= influential_score(graph, small, 0.1) - 1e-9


@settings(max_examples=30, deadline=None)
@given(graph=social_networks(connected=True))
def test_score_at_least_seed_size(graph):
    """Members contribute cpp = 1 each, so sigma(g) >= |V(g)|."""
    vertices = list(graph.vertices())
    seeds = frozenset(vertices[:3]) if len(vertices) >= 3 else frozenset(vertices)
    assert influential_score(graph, seeds, 0.3) >= len(seeds) - 1e-9


@settings(max_examples=25, deadline=None)
@given(graph=social_networks(connected=True))
def test_symmetry_of_reachability_not_probability(graph):
    """upp is positive in both directions between connected vertices (weights may differ)."""
    vertices = list(graph.vertices())
    if len(vertices) < 2:
        return
    u, v = vertices[0], vertices[1]
    forward = user_to_user_propagation(graph, u, v)
    backward = user_to_user_propagation(graph, v, u)
    assert (forward > 0) == (backward > 0)
