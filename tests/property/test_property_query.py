"""Property-based tests for end-to-end query soundness.

The key invariant of the whole system: for any random graph and any query,
the index-based TopL-ICDE algorithm (with all pruning enabled) returns exactly
the same scores as the brute-force enumeration — i.e. every pruning rule and
the index traversal are *safe*.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index.tree import build_tree_index
from repro.pruning.stats import PruningConfig
from repro.query.baselines.bruteforce import bruteforce_topl
from repro.query.params import make_topl_query
from repro.query.seed import is_valid_seed_community
from repro.query.topl import TopLProcessor

from tests.property.strategies import keyword_sets, social_networks

QUERY_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**QUERY_SETTINGS)
@given(
    graph=social_networks(min_vertices=4, max_vertices=12, edge_density=0.5, connected=True),
    keywords=keyword_sets(),
    k=st.integers(min_value=2, max_value=4),
    radius=st.integers(min_value=1, max_value=2),
    theta=st.sampled_from([0.1, 0.2, 0.3]),
    top_l=st.integers(min_value=1, max_value=4),
)
def test_indexed_query_matches_bruteforce(graph, keywords, k, radius, theta, top_l):
    query = make_topl_query(keywords, k=k, radius=radius, theta=theta, top_l=top_l)
    index = build_tree_index(graph, max_radius=2, leaf_capacity=3, fanout=3)
    indexed = TopLProcessor(graph, index=index).query(query)
    brute = bruteforce_topl(graph, query)
    assert list(indexed.scores) == pytest.approx(list(brute.scores))


@settings(**QUERY_SETTINGS)
@given(
    graph=social_networks(min_vertices=4, max_vertices=12, edge_density=0.5, connected=True),
    keywords=keyword_sets(),
    k=st.integers(min_value=2, max_value=4),
    theta=st.sampled_from([0.1, 0.3]),
)
def test_results_satisfy_every_constraint(graph, keywords, k, theta):
    query = make_topl_query(keywords, k=k, radius=2, theta=theta, top_l=5)
    index = build_tree_index(graph, max_radius=2, leaf_capacity=3, fanout=3)
    result = TopLProcessor(graph, index=index).query(query)
    for community in result:
        assert is_valid_seed_community(graph, community.vertices, community.center, query)
        assert all(p >= theta for p in community.influenced.cpp.values())
        assert community.score >= len(community.vertices) - 1e-9


@settings(**QUERY_SETTINGS)
@given(
    graph=social_networks(min_vertices=4, max_vertices=12, edge_density=0.5, connected=True),
    keywords=keyword_sets(),
    k=st.integers(min_value=2, max_value=3),
)
def test_pruning_configurations_agree(graph, keywords, k):
    """Any subset of the pruning rules yields the same answers (all rules are safe)."""
    query = make_topl_query(keywords, k=k, radius=2, theta=0.1, top_l=3)
    index = build_tree_index(graph, max_radius=2, leaf_capacity=3, fanout=3)
    reference = None
    for config in (
        PruningConfig.none_enabled(),
        PruningConfig.keyword_only(),
        PruningConfig.keyword_and_support(),
        PruningConfig.all_enabled(),
    ):
        result = TopLProcessor(graph, index=index, pruning=config).query(query)
        scores = list(result.scores)
        if reference is None:
            reference = scores
        else:
            assert scores == pytest.approx(reference)


@settings(**QUERY_SETTINGS)
@given(
    graph=social_networks(min_vertices=4, max_vertices=12, edge_density=0.5, connected=True),
    keywords=keyword_sets(),
    smaller=st.integers(min_value=1, max_value=2),
)
def test_top_l_prefix_property(graph, keywords, smaller):
    """The top-L result is a prefix of the top-(L+2) result (same scores)."""
    index = build_tree_index(graph, max_radius=2, leaf_capacity=3, fanout=3)
    processor = TopLProcessor(graph, index=index)
    small_query = make_topl_query(keywords, k=3, radius=2, theta=0.1, top_l=smaller)
    large_query = make_topl_query(keywords, k=3, radius=2, theta=0.1, top_l=smaller + 2)
    small_result = processor.query(small_query)
    large_result = processor.query(large_query)
    assert list(small_result.scores) == pytest.approx(
        list(large_result.scores)[: len(small_result)]
    )
