"""Property-based tests for the diversity score (monotone + submodular) and greedy selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.influence.propagation import InfluencedCommunity
from repro.pruning.diversity import coverage_map, diversity_score, marginal_gain
from repro.query.dtopl import greedy_select_diversified
from repro.query.baselines.greedy_wop import greedy_without_pruning
from repro.query.baselines.optimal import optimal_selection
from repro.query.results import SeedCommunity


@st.composite
def influenced_communities(draw, max_communities=6, universe_size=12):
    """Generate a list of synthetic influenced communities over a small universe."""
    count = draw(st.integers(min_value=1, max_value=max_communities))
    communities = []
    for index in range(count):
        size = draw(st.integers(min_value=1, max_value=universe_size))
        members = draw(
            st.sets(
                st.integers(min_value=0, max_value=universe_size - 1),
                min_size=1,
                max_size=size,
            )
        )
        seed = {min(members)}
        cpp = {}
        for vertex in members:
            cpp[vertex] = 1.0 if vertex in seed else draw(
                st.floats(min_value=0.1, max_value=0.99)
            )
        influenced = InfluencedCommunity(
            seed_vertices=frozenset(seed), cpp=cpp, threshold=0.1
        )
        communities.append(
            SeedCommunity(
                center=min(members),
                vertices=frozenset(seed),
                influenced=influenced,
                k=3,
                radius=2,
            )
        )
    return communities


@settings(max_examples=50, deadline=None)
@given(communities=influenced_communities())
def test_diversity_monotonicity(communities):
    """Adding a community to the set never decreases D(S)."""
    influenced = [community.influenced for community in communities]
    for i in range(1, len(influenced) + 1):
        assert diversity_score(influenced[:i]) >= diversity_score(influenced[: i - 1]) - 1e-9


@settings(max_examples=50, deadline=None)
@given(communities=influenced_communities(max_communities=5))
def test_diversity_submodularity(communities):
    """Marginal gains shrink as the selection grows."""
    if len(communities) < 2:
        return
    candidate = communities[-1].influenced
    rest = [community.influenced for community in communities[:-1]]
    for i in range(len(rest)):
        gain_small = marginal_gain(candidate, coverage_map(rest[:i]))
        gain_large = marginal_gain(candidate, coverage_map(rest[: i + 1]))
        assert gain_small >= gain_large - 1e-9


@settings(max_examples=50, deadline=None)
@given(communities=influenced_communities())
def test_diversity_bounded_by_sum_of_scores(communities):
    influenced = [community.influenced for community in communities]
    assert diversity_score(influenced) <= sum(c.score for c in influenced) + 1e-9
    best_single = max(c.score for c in influenced)
    assert diversity_score(influenced) >= best_single - 1e-9


@settings(max_examples=40, deadline=None)
@given(communities=influenced_communities(max_communities=6), top_l=st.integers(1, 4))
def test_lazy_greedy_matches_eager_score(communities, top_l):
    lazy, _ = greedy_select_diversified(communities, top_l)
    eager, _ = greedy_without_pruning(communities, top_l)
    lazy_score = diversity_score([c.influenced for c in lazy])
    eager_score = diversity_score([c.influenced for c in eager])
    assert lazy_score == pytest.approx(eager_score)
    assert len(lazy) == len(eager) == min(top_l, len(communities))


@settings(max_examples=30, deadline=None)
@given(communities=influenced_communities(max_communities=5), top_l=st.integers(1, 3))
def test_greedy_achieves_submodular_guarantee(communities, top_l):
    """Greedy reaches at least (1 - 1/e) of the optimum over the same candidates."""
    greedy, _ = greedy_select_diversified(communities, top_l)
    _, optimal_score, _ = optimal_selection(communities, top_l)
    greedy_score = diversity_score([c.influenced for c in greedy])
    assert greedy_score >= (1 - 1 / 2.718281828459045) * optimal_score - 1e-9
