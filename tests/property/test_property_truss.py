"""Property-based tests for the truss / core substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.subgraph import SubgraphView
from repro.truss.decomposition import truss_decomposition
from repro.truss.kcore import core_decomposition, maximal_kcore
from repro.truss.ktruss import maximal_ktruss
from repro.truss.support import edge_support

from tests.property.strategies import social_networks


@settings(max_examples=40, deadline=None)
@given(graph=social_networks(), k=st.integers(min_value=2, max_value=6))
def test_maximal_ktruss_satisfies_support_condition(graph, k):
    """Every edge of the extracted k-truss has support >= k - 2 inside it."""
    result = maximal_ktruss(graph, k)
    if result.is_empty:
        return
    view = SubgraphView(graph, result.vertices)
    truss_view_supports = edge_support(view)
    for edge in result.edges:
        assert truss_view_supports[edge] >= k - 2


@settings(max_examples=40, deadline=None)
@given(graph=social_networks(), k=st.integers(min_value=3, max_value=6))
def test_ktruss_nested_in_lower_k(graph, k):
    """The k-truss is contained in the (k-1)-truss."""
    higher = maximal_ktruss(graph, k)
    lower = maximal_ktruss(graph, k - 1)
    assert higher.edges <= lower.edges
    assert higher.vertices <= lower.vertices


@settings(max_examples=40, deadline=None)
@given(graph=social_networks())
def test_truss_decomposition_consistent_with_extraction(graph):
    """Edges with trussness >= k are exactly the edges of the maximal k-truss."""
    decomposition = truss_decomposition(graph)
    for k in (3, 4):
        expected = maximal_ktruss(graph, k).edges
        derived = {key for key, value in decomposition.edge_trussness.items() if value >= k}
        assert derived == expected


@settings(max_examples=40, deadline=None)
@given(graph=social_networks(), k=st.integers(min_value=1, max_value=5))
def test_kcore_degree_invariant(graph, k):
    """Every vertex of the k-core has degree >= k inside the k-core."""
    core = maximal_kcore(graph, k)
    if not core:
        return
    view = SubgraphView(graph, core)
    assert all(view.degree(v) >= k for v in core)


@settings(max_examples=40, deadline=None)
@given(graph=social_networks())
def test_core_numbers_bounded_by_degree(graph):
    decomposition = core_decomposition(graph)
    for vertex in graph.vertices():
        assert 0 <= decomposition.core_of(vertex) <= graph.degree(vertex)


@settings(max_examples=30, deadline=None)
@given(graph=social_networks(), k=st.integers(min_value=2, max_value=5))
def test_maximal_ktruss_is_idempotent(graph, k):
    """Re-running the extraction on the truss's own vertex set loses no edge."""
    result = maximal_ktruss(graph, k)
    if result.is_empty:
        return
    view = SubgraphView(graph, result.vertices)
    again = maximal_ktruss(view, k)
    assert result.edges <= again.edges
    assert result.vertices <= again.vertices
