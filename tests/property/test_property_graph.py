"""Property-based tests for the graph substrate and keyword signatures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.subgraph import SubgraphView
from repro.graph.traversal import bfs_distances, hop_subgraph
from repro.keywords.bitvector import BitVector, aggregate

from tests.property.strategies import keyword_sets, social_networks


@settings(max_examples=50, deadline=None)
@given(graph=social_networks())
def test_handshake_lemma(graph):
    """Sum of degrees equals twice the number of edges."""
    assert sum(graph.degree(v) for v in graph.vertices()) == 2 * graph.num_edges()


@settings(max_examples=50, deadline=None)
@given(graph=social_networks())
def test_components_partition_vertices(graph):
    components = graph.connected_components()
    union = set()
    total = 0
    for component in components:
        assert not (union & component)
        union |= component
        total += len(component)
    assert union == set(graph.vertices())
    assert total == graph.num_vertices()


@settings(max_examples=50, deadline=None)
@given(graph=social_networks(connected=True), radius=st.integers(min_value=0, max_value=4))
def test_hop_subgraph_matches_bfs(graph, radius):
    center = next(iter(graph.vertices()))
    view = hop_subgraph(graph, center, radius)
    distances = bfs_distances(graph, center)
    expected = {v for v, d in distances.items() if d <= radius}
    assert view.vertices == frozenset(expected)


@settings(max_examples=50, deadline=None)
@given(graph=social_networks(connected=True), radius=st.integers(min_value=1, max_value=3))
def test_hop_subgraph_monotone_in_radius(graph, radius):
    center = next(iter(graph.vertices()))
    smaller = hop_subgraph(graph, center, radius - 1)
    larger = hop_subgraph(graph, center, radius)
    assert smaller.vertices <= larger.vertices


@settings(max_examples=50, deadline=None)
@given(graph=social_networks())
def test_induced_subgraph_round_trip(graph):
    """Inducing on all vertices reproduces the edge set."""
    copy = graph.induced_subgraph(list(graph.vertices()))
    assert copy.num_vertices() == graph.num_vertices()
    assert copy.num_edges() == graph.num_edges()


@settings(max_examples=50, deadline=None)
@given(graph=social_networks())
def test_subgraph_view_edges_subset_of_parent(graph):
    vertices = list(graph.vertices())[: max(1, graph.num_vertices() // 2)]
    view = SubgraphView(graph, vertices)
    for u, v in view.edges():
        assert graph.has_edge(u, v)
        assert u in view and v in view


@settings(max_examples=60, deadline=None)
@given(keywords_a=keyword_sets(), keywords_b=keyword_sets())
def test_bitvector_no_false_negatives(keywords_a, keywords_b):
    """If two keyword sets share a keyword, their signatures always intersect."""
    vector_a = BitVector.from_keywords(keywords_a)
    vector_b = BitVector.from_keywords(keywords_b)
    if keywords_a & keywords_b:
        assert vector_a.intersects(vector_b)


@settings(max_examples=60, deadline=None)
@given(groups=st.lists(keyword_sets(), min_size=1, max_size=6))
def test_bitvector_aggregation_contains_members(groups):
    vectors = [BitVector.from_keywords(group) for group in groups]
    combined = aggregate(vectors)
    for vector in vectors:
        assert combined.contains_all(vector)
