"""Hypothesis strategies for generating small random social networks."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph.social_network import SocialNetwork

KEYWORD_POOL = ("movies", "books", "sports", "travel", "food", "music")


@st.composite
def social_networks(
    draw,
    min_vertices: int = 2,
    max_vertices: int = 14,
    edge_density: float = 0.35,
    connected: bool = False,
):
    """Generate a random small social network with keywords and probabilities."""
    num_vertices = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    graph = SocialNetwork(name="hypothesis")
    for vertex in range(num_vertices):
        keywords = draw(
            st.sets(st.sampled_from(KEYWORD_POOL), min_size=1, max_size=3)
        )
        graph.add_vertex(vertex, keywords)

    pairs = [(u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)]
    for u, v in pairs:
        if draw(st.floats(min_value=0.0, max_value=1.0)) < edge_density:
            p_uv = draw(st.floats(min_value=0.05, max_value=0.95))
            p_vu = draw(st.floats(min_value=0.05, max_value=0.95))
            graph.add_edge(u, v, p_uv, p_vu)

    if connected and num_vertices > 1:
        # Stitch components together with a spanning chain so connectivity holds.
        previous = 0
        for vertex in range(1, num_vertices):
            if not graph.has_edge(previous, vertex):
                graph.add_edge(previous, vertex, 0.5, 0.5)
            previous = vertex
    return graph


@st.composite
def keyword_sets(draw, min_size: int = 1, max_size: int = 4):
    """Generate a non-empty query keyword set from the shared pool."""
    return frozenset(
        draw(st.sets(st.sampled_from(KEYWORD_POOL), min_size=min_size, max_size=max_size))
    )
