"""Unit tests for the tightened support bound (centre-vertex trussness)."""

import pytest

from repro.index.node import EntryAggregates
from repro.index.precompute import precompute
from repro.index.serialization import precomputed_from_dict, precomputed_to_dict
from repro.index.tree import build_tree_index
from repro.pruning.rules import trussness_prune
from repro.truss.decomposition import truss_decomposition


class TestTrussnessPruneRule:
    def test_prunes_below_k(self):
        assert trussness_prune(center_trussness_bound=3, k=4)
        assert not trussness_prune(center_trussness_bound=4, k=4)
        assert not trussness_prune(center_trussness_bound=7, k=4)

    def test_minimum_trussness_never_prunes_k2(self):
        assert not trussness_prune(center_trussness_bound=2, k=2)


class TestPrecomputedTrussness:
    def test_matches_truss_decomposition(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=1)
        decomposition = truss_decomposition(two_cliques_bridge)
        for vertex in two_cliques_bridge.vertices():
            assert (
                data.aggregates_of(vertex).center_trussness
                == decomposition.trussness_of_vertex(vertex)
            )

    def test_clique_vertices_have_high_trussness(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=1)
        assert data.aggregates_of(0).center_trussness == 4
        assert data.aggregates_of(4).center_trussness == 2  # bridge vertex

    def test_serialization_round_trip(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=1)
        rebuilt = precomputed_from_dict(precomputed_to_dict(data))
        for vertex in two_cliques_bridge.vertices():
            assert (
                rebuilt.aggregates_of(vertex).center_trussness
                == data.aggregates_of(vertex).center_trussness
            )

    def test_legacy_documents_default_to_minimum(self, triangle_graph):
        payload = precomputed_to_dict(precompute(triangle_graph, max_radius=1))
        for record in payload["vertices"]:
            record.pop("center_trussness")
        rebuilt = precomputed_from_dict(payload)
        assert all(
            rebuilt.aggregates_of(v).center_trussness == 2 for v in triangle_graph.vertices()
        )


class TestEntryAggregation:
    def test_entry_bound_is_max_over_subtree(self, two_cliques_bridge):
        index = build_tree_index(two_cliques_bridge, max_radius=1, leaf_capacity=3, fanout=2)
        decomposition = truss_decomposition(two_cliques_bridge)

        def check(node):
            expected = max(
                decomposition.trussness_of_vertex(v) for v in node.subtree_vertices()
            )
            assert node.aggregates.trussness_bound == expected
            for child in node.children:
                check(child)

        check(index.root)

    def test_root_bound_equals_graph_max_trussness(self, two_cliques_bridge):
        index = build_tree_index(two_cliques_bridge, max_radius=1)
        assert index.root.aggregates.trussness_bound == 4

    def test_combine_takes_max(self, two_cliques_bridge):
        from repro.index.node import LeafVertexEntry
        from repro.index.precompute import precompute as run_precompute

        data = run_precompute(two_cliques_bridge, max_radius=1)
        clique_entry = LeafVertexEntry(vertex=0, aggregates=data.aggregates_of(0)).entry
        bridge_entry = LeafVertexEntry(vertex=4, aggregates=data.aggregates_of(4)).entry
        combined = EntryAggregates.combine([clique_entry, bridge_entry])
        assert combined.trussness_bound == 4


class TestQueryBehaviour:
    def test_low_trussness_centers_pruned_without_extraction(self, two_cliques_bridge):
        """Bridge vertices cannot host a 4-truss: support pruning removes them."""
        from repro.query.params import make_topl_query
        from repro.query.topl import TopLProcessor

        index = build_tree_index(two_cliques_bridge, max_radius=2)
        processor = TopLProcessor(two_cliques_bridge, index=index)
        # "travel" is carried only by the bridge vertices 4 and 5.
        query = make_topl_query({"travel"}, k=4, radius=2, theta=0.1, top_l=2)
        result = processor.query(query)
        assert len(result) == 0
        assert result.statistics.pruned_by_support >= 1
        assert result.statistics.communities_scored == 0

    def test_answers_unchanged_with_and_without_support_rule(self, small_world_graph, small_engine):
        from repro.pruning.stats import PruningConfig
        from repro.query.params import make_topl_query
        from repro.query.topl import TopLProcessor

        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:6])
        query = make_topl_query(keywords, k=4, radius=2, theta=0.2, top_l=3)
        with_rule = TopLProcessor(small_world_graph, index=small_engine.index).query(query)
        without_rule = TopLProcessor(
            small_world_graph,
            index=small_engine.index,
            pruning=PruningConfig(keyword=True, support=False, score=True),
        ).query(query)
        assert list(with_rule.scores) == pytest.approx(list(without_rule.scores))
