"""Unit tests for index (de)serialisation."""

import json

import pytest

from repro.exceptions import SerializationError
from repro.index.precompute import precompute
from repro.index.serialization import (
    load_index,
    precomputed_from_dict,
    precomputed_to_dict,
    save_index,
)
from repro.index.tree import build_tree_index


class TestPrecomputedRoundTrip:
    def test_round_trip_preserves_aggregates(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=2, thresholds=(0.1, 0.3))
        rebuilt = precomputed_from_dict(precomputed_to_dict(data))
        assert rebuilt.max_radius == data.max_radius
        assert rebuilt.thresholds == data.thresholds
        assert set(rebuilt.vertex_aggregates) == set(data.vertex_aggregates)
        for vertex in data.vertex_aggregates:
            original = data.aggregates_of(vertex)
            copy = rebuilt.aggregates_of(vertex)
            assert copy.keyword_bitvector == original.keyword_bitvector
            for radius in original.per_radius:
                assert copy.for_radius(radius).bitvector == original.for_radius(radius).bitvector
                assert (
                    copy.for_radius(radius).support_upper_bound
                    == original.for_radius(radius).support_upper_bound
                )
                for copied_pair, original_pair in zip(
                    copy.for_radius(radius).score_bounds,
                    original.for_radius(radius).score_bounds,
                ):
                    assert copied_pair[0] == pytest.approx(original_pair[0])
                    assert copied_pair[1] == pytest.approx(original_pair[1])

    def test_edge_supports_preserved(self, triangle_graph):
        data = precompute(triangle_graph, max_radius=1)
        rebuilt = precomputed_from_dict(precomputed_to_dict(data))
        assert rebuilt.global_edge_support == data.global_edge_support

    def test_string_vertices_round_trip(self, triangle_graph):
        data = precompute(triangle_graph, max_radius=1)
        rebuilt = precomputed_from_dict(precomputed_to_dict(data))
        assert "a" in rebuilt.vertex_aggregates

    def test_unsupported_version_rejected(self, triangle_graph):
        payload = precomputed_to_dict(precompute(triangle_graph, max_radius=1))
        payload["format_version"] = 99
        with pytest.raises(SerializationError):
            precomputed_from_dict(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            precomputed_from_dict({"format_version": 1})


class TestIndexRoundTrip:
    def test_save_and_load(self, tmp_path, two_cliques_bridge):
        index = build_tree_index(two_cliques_bridge, max_radius=2, leaf_capacity=4, fanout=3)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(two_cliques_bridge, path)
        assert loaded.describe() == index.describe()
        assert set(loaded.root.subtree_vertices()) == set(index.root.subtree_vertices())

    def test_loaded_index_answers_queries_identically(self, tmp_path, two_cliques_bridge):
        from repro.query.params import make_topl_query
        from repro.query.topl import TopLProcessor

        index = build_tree_index(two_cliques_bridge, max_radius=2)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(two_cliques_bridge, path)

        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2)
        original = TopLProcessor(two_cliques_bridge, index=index).query(query)
        reloaded = TopLProcessor(two_cliques_bridge, index=loaded).query(query)
        assert [c.vertices for c in original] == [c.vertices for c in reloaded]
        assert list(original.scores) == pytest.approx(list(reloaded.scores))

    def test_missing_file_rejected(self, tmp_path, triangle_graph):
        with pytest.raises(SerializationError):
            load_index(triangle_graph, tmp_path / "nope.json")

    def test_corrupt_file_rejected(self, tmp_path, triangle_graph):
        path = tmp_path / "index.json"
        path.write_text(json.dumps({"fanout": 4}))
        with pytest.raises(SerializationError):
            load_index(triangle_graph, path)

    def test_json_is_plain_text(self, tmp_path, triangle_graph):
        index = build_tree_index(triangle_graph, max_radius=1)
        path = tmp_path / "index.json"
        save_index(index, path)
        payload = json.loads(path.read_text())
        assert payload["fanout"] == index.fanout
        assert payload["precomputed"]["max_radius"] == 1


class TestSerializationAfterIncrementalPatch:
    """Round trip after a dynamic update: serialize -> load -> answers unchanged."""

    def _fingerprint(self, result):
        return [(c.vertices, round(c.score, 9)) for c in result]

    def test_patched_index_round_trips(self, tmp_path, two_cliques_bridge):
        from repro.core.config import EngineConfig
        from repro.core.engine import InfluentialCommunityEngine
        from repro.dynamic.updates import EdgeUpdate
        from repro.query.params import make_topl_query

        config = EngineConfig(
            max_radius=2, thresholds=(0.1, 0.2, 0.3), fanout=3, leaf_capacity=4
        )
        engine = InfluentialCommunityEngine.build(
            two_cliques_bridge, config=config, validate=False
        )
        report = engine.apply_updates(
            [
                EdgeUpdate.delete(4, 5),
                EdgeUpdate.insert(0, 42, 0.8, keywords_v={"movies"}),
            ],
            damage_threshold=1.0,
        )
        assert report.mode == "incremental"

        path = tmp_path / "patched.json"
        engine.save_index(path)
        reloaded = InfluentialCommunityEngine.from_saved_index(engine.graph, path)

        queries = [
            make_topl_query({"movies"}, k=3, radius=1, theta=0.2, top_l=3),
            make_topl_query({"books"}, k=4, radius=2, theta=0.1, top_l=2),
            make_topl_query({"movies", "travel"}, k=3, radius=2, theta=0.3, top_l=3),
        ]
        for query in queries:
            assert self._fingerprint(reloaded.topl(query)) == self._fingerprint(
                engine.topl(query)
            )

    def test_patched_supports_survive_round_trip(self, tmp_path, two_cliques_bridge):
        from repro.core.config import EngineConfig
        from repro.core.engine import InfluentialCommunityEngine
        from repro.dynamic.updates import EdgeUpdate
        from repro.truss.support import edge_support

        config = EngineConfig(max_radius=2, thresholds=(0.1, 0.3))
        engine = InfluentialCommunityEngine.build(
            two_cliques_bridge, config=config, validate=False
        )
        engine.apply_updates([EdgeUpdate.delete(0, 1)], damage_threshold=1.0)

        path = tmp_path / "patched.json"
        engine.save_index(path)
        reloaded = InfluentialCommunityEngine.from_saved_index(engine.graph, path)
        assert (
            reloaded.index.precomputed.global_edge_support
            == edge_support(engine.graph)
        )
