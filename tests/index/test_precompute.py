"""Unit tests for the offline pre-computation (Algorithm 2)."""

import pytest

from repro.exceptions import GraphError
from repro.graph.traversal import hop_subgraph
from repro.index.precompute import precompute
from repro.influence.propagation import influential_score
from repro.keywords.bitvector import BitVector
from repro.truss.support import edge_key


class TestPrecomputeBasics:
    def test_every_vertex_covered(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=2, thresholds=(0.1, 0.3))
        assert data.num_vertices() == two_cliques_bridge.num_vertices()
        assert set(data.vertex_aggregates) == set(two_cliques_bridge.vertices())

    def test_radii_range(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=3)
        aggregates = data.aggregates_of(0)
        assert sorted(aggregates.per_radius) == [1, 2, 3]
        assert list(data.supported_radii()) == [1, 2, 3]

    def test_thresholds_sorted_and_deduplicated(self, triangle_graph):
        data = precompute(triangle_graph, thresholds=(0.3, 0.1, 0.3))
        assert data.thresholds == (0.1, 0.3)

    def test_invalid_parameters_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            precompute(triangle_graph, max_radius=0)
        with pytest.raises(GraphError):
            precompute(triangle_graph, thresholds=())
        with pytest.raises(GraphError):
            precompute(triangle_graph, thresholds=(0.5, 1.0))

    def test_restricted_vertex_set(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, vertices=[0, 5])
        assert set(data.vertex_aggregates) == {0, 5}

    def test_validate_radius(self, triangle_graph):
        data = precompute(triangle_graph, max_radius=2)
        data.validate_radius(1)
        data.validate_radius(2)
        with pytest.raises(GraphError):
            data.validate_radius(3)
        with pytest.raises(GraphError):
            data.validate_radius(0)


class TestKeywordAggregates:
    def test_vertex_bitvector_matches_keywords(self, triangle_graph):
        data = precompute(triangle_graph, max_radius=1)
        expected = BitVector.from_keywords(triangle_graph.keywords("a"))
        assert data.aggregates_of("a").keyword_bitvector == expected

    def test_radius_bitvector_is_or_of_members(self, triangle_graph):
        data = precompute(triangle_graph, max_radius=2)
        view = hop_subgraph(triangle_graph, "a", 2)
        expected = BitVector.empty()
        for vertex in view:
            expected = expected | BitVector.from_keywords(triangle_graph.keywords(vertex))
        assert data.aggregates_of("a").for_radius(2).bitvector == expected

    def test_bitvector_grows_with_radius(self, triangle_graph):
        data = precompute(triangle_graph, max_radius=2)
        aggregates = data.aggregates_of("a")
        r1 = aggregates.for_radius(1).bitvector
        r2 = aggregates.for_radius(2).bitvector
        assert r2.contains_all(r1)


class TestSupportAggregates:
    def test_global_edge_supports_recorded(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=1)
        assert data.global_edge_support[edge_key(0, 1)] == 2
        assert data.global_edge_support[edge_key(3, 4)] == 0

    def test_support_bound_is_max_over_hop_edges(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=2)
        # Bridge vertex 4: its 1-hop subgraph contains edges (3,4) and (4,5)
        # whose global supports are 0, but 2-hop reaches clique edges.
        aggregates = data.aggregates_of(4)
        assert aggregates.for_radius(1).support_upper_bound == 0
        assert aggregates.for_radius(2).support_upper_bound == 2

    def test_support_bound_monotone_in_radius(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=3)
        for vertex in two_cliques_bridge.vertices():
            aggregates = data.aggregates_of(vertex)
            bounds = [aggregates.for_radius(r).support_upper_bound for r in (1, 2, 3)]
            assert bounds == sorted(bounds)

    def test_support_bound_upper_bounds_seed_support(self, two_cliques_bridge):
        """The pre-computed bound dominates the true max support inside hop(v, r)."""
        from repro.truss.support import max_support

        data = precompute(two_cliques_bridge, max_radius=2)
        for vertex in two_cliques_bridge.vertices():
            view = hop_subgraph(two_cliques_bridge, vertex, 2)
            assert data.aggregates_of(vertex).for_radius(2).support_upper_bound >= max_support(
                view
            )


class TestScoreAggregates:
    def test_score_bound_matches_hop_score(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=1, thresholds=(0.1,))
        view = hop_subgraph(two_cliques_bridge, 0, 1)
        expected = influential_score(two_cliques_bridge, view.vertices, 0.1)
        bounds = dict(data.aggregates_of(0).for_radius(1).score_bounds)
        assert bounds[0.1] == pytest.approx(expected)

    def test_score_bounds_decrease_with_threshold(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=2, thresholds=(0.1, 0.2, 0.3))
        for vertex in two_cliques_bridge.vertices():
            bounds = data.aggregates_of(vertex).for_radius(2).score_bounds
            scores = [sigma for _, sigma in bounds]
            assert scores == sorted(scores, reverse=True)

    def test_score_bound_for_selects_largest_theta_not_exceeding(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=1, thresholds=(0.1, 0.3))
        aggregates = data.aggregates_of(0).for_radius(1)
        pairs = dict(aggregates.score_bounds)
        assert aggregates.score_bound_for(0.2) == pytest.approx(pairs[0.1])
        assert aggregates.score_bound_for(0.3) == pytest.approx(pairs[0.3])
        assert aggregates.score_bound_for(0.35) == pytest.approx(pairs[0.3])
        # theta below every pre-selected threshold yields +inf (never prune).
        assert aggregates.score_bound_for(0.05) == float("inf")

    def test_score_bound_grows_with_radius(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=3, thresholds=(0.1,))
        for vertex in two_cliques_bridge.vertices():
            aggregates = data.aggregates_of(vertex)
            scores = [dict(aggregates.for_radius(r).score_bounds)[0.1] for r in (1, 2, 3)]
            assert scores == sorted(scores)
