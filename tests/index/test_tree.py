"""Unit tests for tree-index construction."""

import pytest

from repro.exceptions import IndexStateError
from repro.graph.social_network import SocialNetwork
from repro.index.node import EntryAggregates
from repro.index.precompute import precompute
from repro.index.tree import build_tree_index


class TestBuildTreeIndex:
    def test_all_vertices_stored(self, two_cliques_bridge):
        index = build_tree_index(two_cliques_bridge, max_radius=2)
        assert index.num_vertices() == two_cliques_bridge.num_vertices()
        assert set(index.root.subtree_vertices()) == set(two_cliques_bridge.vertices())

    def test_leaf_capacity_respected(self, small_world_graph):
        index = build_tree_index(small_world_graph, max_radius=1, leaf_capacity=4, fanout=3)

        def check(node):
            if node.is_leaf:
                assert 1 <= len(node.vertices) <= 4
            else:
                assert 2 <= len(node.children) <= 3 or node is index.root
                for child in node.children:
                    check(child)

        check(index.root)

    def test_height_grows_with_smaller_fanout(self, small_world_graph):
        wide = build_tree_index(small_world_graph, max_radius=1, leaf_capacity=32, fanout=16)
        narrow = build_tree_index(small_world_graph, max_radius=1, leaf_capacity=4, fanout=2)
        assert narrow.height() >= wide.height()

    def test_empty_graph_gives_empty_index(self):
        graph = SocialNetwork()
        index = build_tree_index(graph, max_radius=1)
        assert index.root is None
        assert index.num_vertices() == 0
        assert index.height() == -1

    def test_single_vertex_graph(self):
        graph = SocialNetwork()
        graph.add_vertex(1, {"movies"})
        index = build_tree_index(graph, max_radius=1)
        assert index.root is not None
        assert index.root.is_leaf
        assert index.num_vertices() == 1

    def test_invalid_parameters_rejected(self, triangle_graph):
        with pytest.raises(IndexStateError):
            build_tree_index(triangle_graph, fanout=1)
        with pytest.raises(IndexStateError):
            build_tree_index(triangle_graph, leaf_capacity=0)

    def test_reuses_precomputed_data(self, two_cliques_bridge):
        data = precompute(two_cliques_bridge, max_radius=2, thresholds=(0.1,))
        index = build_tree_index(two_cliques_bridge, precomputed=data)
        assert index.precomputed is data
        assert index.max_radius == 2
        assert index.thresholds == (0.1,)

    def test_vertex_aggregates_lookup(self, two_cliques_bridge):
        index = build_tree_index(two_cliques_bridge, max_radius=2)
        aggregates = index.vertex_aggregates(0)
        assert aggregates.vertex == 0
        with pytest.raises(IndexStateError):
            index.vertex_aggregates(999)

    def test_validate_radius(self, two_cliques_bridge):
        index = build_tree_index(two_cliques_bridge, max_radius=2)
        index.validate_radius(2)
        with pytest.raises(Exception):
            index.validate_radius(3)

    def test_describe(self, two_cliques_bridge):
        index = build_tree_index(two_cliques_bridge, max_radius=2)
        summary = index.describe()
        assert summary["num_vertices"] == 10
        assert summary["max_radius"] == 2
        assert summary["num_nodes"] == index.root.count_nodes()


class TestAggregateSoundness:
    """Parent aggregates must dominate every child (the pruning rules rely on it)."""

    def _check_node(self, node, radius):
        if node.is_leaf:
            return
        for child in node.children:
            parent = node.aggregates.per_radius[radius]
            child_aggregates = child.aggregates.per_radius[radius]
            assert parent.bitvector.contains_all(child_aggregates.bitvector)
            assert parent.support_upper_bound >= child_aggregates.support_upper_bound
            parent_scores = dict(parent.score_bounds)
            for theta, sigma in child_aggregates.score_bounds:
                assert parent_scores[theta] >= sigma - 1e-9
            self._check_node(child, radius)

    def test_aggregates_dominate_children(self, small_world_graph):
        index = build_tree_index(small_world_graph, max_radius=2, leaf_capacity=8, fanout=4)
        for radius in (1, 2):
            self._check_node(index.root, radius)

    def test_root_aggregates_dominate_every_vertex(self, two_cliques_bridge):
        index = build_tree_index(two_cliques_bridge, max_radius=2)
        root = index.root.aggregates.per_radius[2]
        for vertex in two_cliques_bridge.vertices():
            record = index.vertex_aggregates(vertex).for_radius(2)
            assert root.bitvector.contains_all(record.bitvector)
            assert root.support_upper_bound >= record.support_upper_bound

    def test_combine_rejects_empty(self):
        with pytest.raises(ValueError):
            EntryAggregates.combine([])
