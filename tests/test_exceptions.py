"""Regression tests: error messages must ``repr()`` embedded vertex ids.

A vertex id is arbitrary user data — commonly a string, possibly one with
spaces ("Jane Doe") or one that looks like surrounding message text.  An
error message that interpolates it raw is ambiguous: ``vertex Jane Doe is
not in the graph`` reads as two words of prose, and ``edge (a, b, c, d)``
cannot be split back into its two endpoints.  Every message that embeds an
id must therefore use ``repr()``, which quotes strings and keeps tuple ids
bracketed.  These tests lock that contract for the exception hierarchy and
for the raise sites that build their own messages.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    InvalidProbabilityError,
    VertexNotFoundError,
)
from repro.graph.social_network import SocialNetwork
from repro.graph.validation import validate_graph
from repro.index.tree import build_tree_index


SPACED = "Jane Doe"
TRICKY = "is not in"  # raw interpolation would make the message self-similar


def test_vertex_not_found_quotes_string_ids():
    error = VertexNotFoundError(SPACED)
    assert "'Jane Doe'" in str(error)
    assert error.vertex == SPACED


def test_vertex_not_found_message_unambiguous_for_tricky_ids():
    assert "'is not in'" in str(VertexNotFoundError(TRICKY))


def test_edge_not_found_quotes_both_endpoints():
    error = EdgeNotFoundError(SPACED, ("tuple", "id"))
    message = str(error)
    assert "'Jane Doe'" in message
    assert "('tuple', 'id')" in message
    assert (error.u, error.v) == (SPACED, ("tuple", "id"))


def test_invalid_probability_reprs_value():
    assert "'not-a-float'" in str(InvalidProbabilityError("not-a-float"))


def test_graph_raise_sites_quote_ids():
    graph = SocialNetwork()
    graph.add_edge("a b", "c d", 0.5)
    with pytest.raises(VertexNotFoundError, match="'x y'"):
        graph.degree("x y")
    with pytest.raises(EdgeNotFoundError, match="'a b'.*'x y'"):
        graph.probability("a b", "x y")
    with pytest.raises(GraphError, match="'a b'"):
        graph.add_edge("a b", "a b")  # self-loop message embeds the id


def test_validation_report_quotes_ids():
    graph = SocialNetwork()
    graph.add_edge("u v", "w x", 0.5)
    # Corrupt the structure to force a validation message embedding the ids.
    del graph._adj["w x"]["u v"]
    report = validate_graph(graph, strict=False)
    assert any("'u v'" in issue and "'w x'" in issue for issue in report.issues)


def test_index_coverage_error_quotes_ids():
    graph = SocialNetwork()
    graph.add_edge("a b", "c d", 0.5)
    index = build_tree_index(graph)
    with pytest.raises(Exception, match="'nope nope'"):
        index.vertex_aggregates("nope nope")
