"""Shared fixtures for the test suite.

Expensive artefacts (engines, indexes over generated graphs) are
session-scoped so they are built once and reused by many tests; small
hand-crafted graphs are function-scoped because tests mutate them.
"""

from __future__ import annotations

import pytest

from repro.core.engine import InfluentialCommunityEngine
from repro.graph.datasets import uni
from repro.graph.generators import complete_graph, planted_community_graph
from repro.graph.social_network import SocialNetwork
from repro.workloads.queries import QueryWorkload


def build_triangle_graph() -> SocialNetwork:
    """A single triangle plus a pendant vertex, with simple keywords."""
    graph = SocialNetwork(name="triangle")
    graph.add_vertex("a", {"movies"})
    graph.add_vertex("b", {"movies", "books"})
    graph.add_vertex("c", {"books"})
    graph.add_vertex("d", {"sports"})
    graph.add_edge("a", "b", 0.8)
    graph.add_edge("b", "c", 0.7)
    graph.add_edge("a", "c", 0.9)
    graph.add_edge("c", "d", 0.5)
    return graph


def build_two_cliques_bridge() -> SocialNetwork:
    """Two 4-cliques joined by a 2-edge bridge path.

    Clique A = {0, 1, 2, 3} tagged "movies"; clique B = {6, 7, 8, 9} tagged
    "books"; bridge vertices 4 and 5 tagged "travel".  Every edge carries
    probability 0.6 so influence scores are easy to reason about.
    """
    graph = SocialNetwork(name="two-cliques")
    for vertex in range(4):
        graph.add_vertex(vertex, {"movies"})
    for vertex in (4, 5):
        graph.add_vertex(vertex, {"travel"})
    for vertex in range(6, 10):
        graph.add_vertex(vertex, {"books"})
    for block in (range(4), range(6, 10)):
        members = list(block)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                graph.add_edge(u, v, 0.6)
    graph.add_edge(3, 4, 0.6)
    graph.add_edge(4, 5, 0.6)
    graph.add_edge(5, 6, 0.6)
    return graph


@pytest.fixture
def triangle_graph() -> SocialNetwork:
    return build_triangle_graph()


@pytest.fixture
def two_cliques_bridge() -> SocialNetwork:
    return build_two_cliques_bridge()


@pytest.fixture
def clique5() -> SocialNetwork:
    graph = complete_graph(5, rng=3, name="k5")
    for vertex in graph.vertices():
        graph.set_keywords(vertex, {"movies"})
    return graph


@pytest.fixture
def planted_graph() -> SocialNetwork:
    graph = planted_community_graph(
        [8, 8, 6], intra_probability=0.8, inter_probability=0.05, rng=5
    )
    for vertex in graph.vertices():
        graph.set_keywords(vertex, {"movies"} if vertex < 16 else {"books"})
    return graph


@pytest.fixture(scope="session")
def small_world_graph() -> SocialNetwork:
    """A 150-vertex Uni graph shared (read-only) across the session."""
    return uni(num_vertices=150, rng=3)


@pytest.fixture(scope="session")
def small_engine(small_world_graph) -> InfluentialCommunityEngine:
    """An engine over the session graph; building it is the expensive part."""
    return InfluentialCommunityEngine.build(small_world_graph, validate=False)


@pytest.fixture(scope="session")
def small_workload(small_world_graph) -> QueryWorkload:
    return QueryWorkload(small_world_graph, rng=11)
