"""Scenario pipeline: end-to-end replay, gates and report round-trips."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.exceptions import ScenarioError
from repro.scenarios.pipeline import BACKENDS, ScenarioReport, run_scenario
from repro.scenarios.report import (
    format_scenario_table,
    load_scenarios_document,
    scenarios_document,
    write_scenarios_document,
)
from repro.scenarios.spec import ScenarioSpec
from repro.service.facade import CommunityService


def tiny_spec(**gate_overrides) -> ScenarioSpec:
    gates = {"require_equivalence": True, "min_nonempty_results": 1}
    gates.update(gate_overrides)
    return ScenarioSpec.from_dict(
        {
            "scenario": {"name": "tiny", "seed": 5, "smoke": True},
            "graph": {
                "recipe": "planted",
                "num_vertices": 90,
                "keyword_domain": 8,
                "params": {"communities": 3, "intra_probability": 0.3},
            },
            "probabilities": {"model": "weighted_cascade"},
            "trace": {"kind": "bursty", "operations": 8, "update_share": 0.25},
            "queries": {"theta": 0.05, "num_keywords": 3, "k": 3, "top_l": 2},
            "gates": gates,
        }
    )


@pytest.fixture(scope="module")
def tiny_report():
    return run_scenario(tiny_spec(), enforce_gates=True)


def test_report_passes_gates_and_covers_both_backends(tiny_report):
    assert tiny_report.passed
    assert tiny_report.equivalence
    assert tiny_report.first_mismatch is None
    assert set(tiny_report.backends) == set(BACKENDS) == {"reference", "fast"}
    for backend in BACKENDS:
        run = tiny_report.backends[backend]
        assert run["final_epoch"] >= 1  # the trace applied updates
        assert run["total_seconds"] > 0
    assert tiny_report.speedup > 0
    assert tiny_report.cpu_count >= 1
    assert tiny_report.seed == 5
    assert tiny_report.smoke is True


def test_backends_agree_on_final_graph_state(tiny_report):
    reference = tiny_report.backends["reference"]
    fast = tiny_report.backends["fast"]
    assert reference["final_epoch"] == fast["final_epoch"]
    assert reference["final_num_edges"] == fast["final_num_edges"]
    assert reference["nonempty_results"] == fast["nonempty_results"]


def test_report_json_round_trips(tiny_report):
    document = tiny_report.to_json()
    # Emitted reports must survive a JSON wire trip unchanged.
    restored = ScenarioReport.from_json(json.loads(json.dumps(document)))
    assert restored == tiny_report
    assert restored.to_json() == document


def test_report_from_json_rejects_unknown_keys(tiny_report):
    document = tiny_report.to_json()
    document["surprise"] = 1
    with pytest.raises(ScenarioError, match="surprise"):
        ScenarioReport.from_json(document)


def test_unreachable_gate_fails_and_enforcement_raises():
    spec = tiny_spec(min_nonempty_results=10_000)
    report = run_scenario(spec)
    assert not report.passed
    assert report.gates["nonempty_ok"] is False
    with pytest.raises(ScenarioError, match="gate"):
        run_scenario(spec, enforce_gates=True)


def test_run_scenario_reuses_a_caller_service(tiny_report):
    service = CommunityService()
    report = run_scenario(tiny_spec(), service=service)
    assert report.equivalence
    # Scenario sessions are dropped after the run, not leaked to the caller.
    for backend in BACKENDS:
        assert not service.has_session(f"scenario:tiny:{backend}")


def test_scenarios_document_round_trips_through_disk(tiny_report, tmp_path):
    path = tmp_path / "BENCH_scenarios.json"
    document = write_scenarios_document([tiny_report], path)
    assert document == json.loads(path.read_text())
    restored = load_scenarios_document(path)
    assert restored == [tiny_report]
    assert document["equivalence"] is True
    assert document["scenarios"]["tiny"]["seed"] == 5


def test_scenarios_document_validates_against_schema(tiny_report):
    from repro.scenarios.bench_schema import validate_bench_document

    assert validate_bench_document(scenarios_document([tiny_report])) == []


def test_format_scenario_table_mentions_every_scenario(tiny_report):
    table = format_scenario_table([tiny_report])
    assert "tiny" in table
    assert "speedup" in table


def test_determinism_same_spec_same_wire_answers(tiny_report):
    again = run_scenario(tiny_spec())
    mutable = ("recorded_unix", "speedup", "backends")
    left = {k: v for k, v in dataclasses.asdict(tiny_report).items() if k not in mutable}
    right = {k: v for k, v in dataclasses.asdict(again).items() if k not in mutable}
    assert left == right
    for backend in BACKENDS:
        for key in ("final_epoch", "final_num_edges", "nonempty_results"):
            assert tiny_report.backends[backend][key] == again.backends[backend][key]
