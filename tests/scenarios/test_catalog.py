"""Catalog integrity: names, smoke subset, and acceptance-floor coverage."""

from __future__ import annotations

import pytest

from repro.exceptions import ScenarioError
from repro.scenarios.catalog import catalog, get_scenario, scenario_names, smoke_catalog
from repro.scenarios.generators import build_scenario_graph
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.traces import synthesize_trace


def test_catalog_has_at_least_six_scenarios_with_unique_names():
    specs = catalog()
    assert len(specs) >= 6
    names = [spec.name for spec in specs]
    assert len(set(names)) == len(names)


def test_smoke_subset_is_a_small_strict_subset():
    smoke = smoke_catalog()
    assert 3 <= len(smoke) <= 4
    smoke_names = {spec.name for spec in smoke}
    assert smoke_names < {spec.name for spec in catalog()}
    assert all(spec.smoke for spec in smoke)


def test_catalog_covers_models_and_trace_kinds():
    specs = catalog()
    assert {spec.probabilities.model for spec in specs} == {
        "as_generated",
        "weighted_cascade",
        "trivalency",
    }
    assert {spec.trace.kind for spec in specs} == {
        "bursty",
        "hot_key_skew",
        "adversarial_churn",
    }
    assert len({spec.graph.recipe for spec in specs}) >= 5


def test_every_catalog_entry_requires_equivalence():
    assert all(spec.gates.require_equivalence for spec in catalog())


def test_scenario_names_and_lookup_agree():
    names = scenario_names()
    assert scenario_names(smoke_only=True) == tuple(
        spec.name for spec in smoke_catalog()
    )
    for name in names:
        assert get_scenario(name).name == name


def test_unknown_scenario_lists_the_catalog():
    with pytest.raises(ScenarioError, match="planted-wc-bursty"):
        get_scenario("no-such-scenario")


def test_catalog_specs_round_trip_and_synthesize():
    # Parsing through from_dict is already the catalog's construction path;
    # this pins the document round trip plus graph/trace synthesis for the
    # smoke subset (the nightly entries run in the slow-marked bench).
    for spec in smoke_catalog():
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        graph = build_scenario_graph(spec)
        trace = synthesize_trace(graph, spec)
        assert len(trace.ops) == spec.trace.operations
