"""Scenario spec parsing: strictness, defaults, round-trips and file loading."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ScenarioError
from repro.scenarios.spec import (
    ScenarioSpec,
    load_scenario_file,
    scenario_from_json,
)


def minimal_document(**overrides) -> dict:
    document = {
        "scenario": {"name": "t", "seed": 7},
        "graph": {"recipe": "planted", "num_vertices": 60},
        "probabilities": {"model": "as_generated"},
        "trace": {"kind": "bursty", "operations": 6},
        "queries": {"theta": 0.1},
        "gates": {},
    }
    document.update(overrides)
    return document


def test_minimal_document_parses_with_defaults():
    spec = ScenarioSpec.from_dict(minimal_document())
    assert spec.name == "t"
    assert spec.seed == 7
    assert spec.smoke is False
    assert spec.graph.recipe == "planted"
    assert spec.trace.operations == 6
    assert spec.queries.k == 3
    assert spec.engine.max_radius == 2
    assert spec.gates.require_equivalence is True


@pytest.mark.parametrize(
    "section, payload",
    [
        ("scenario", {"name": "t", "seed": 7, "bogus": 1}),
        ("graph", {"recipe": "planted", "num_vertices": 60, "bogus": 1}),
        ("probabilities", {"model": "as_generated", "bogus": 1}),
        ("trace", {"kind": "bursty", "bogus": 1}),
        ("queries", {"theta": 0.1, "bogus": 1}),
        ("engine", {"max_radius": 2, "bogus": 1}),
        ("gates", {"bogus": 1}),
    ],
)
def test_unknown_keys_rejected_in_every_section(section, payload):
    document = minimal_document(**{section: payload})
    with pytest.raises(ScenarioError, match="bogus"):
        ScenarioSpec.from_dict(document)


def test_unknown_top_level_section_rejected():
    with pytest.raises(ScenarioError):
        ScenarioSpec.from_dict(minimal_document(extra={"x": 1}))


def test_unknown_recipe_and_model_and_kind_rejected():
    with pytest.raises(ScenarioError, match="recipe"):
        ScenarioSpec.from_dict(
            minimal_document(graph={"recipe": "no-such", "num_vertices": 60})
        )
    with pytest.raises(ScenarioError, match="model"):
        ScenarioSpec.from_dict(minimal_document(probabilities={"model": "no-such"}))
    with pytest.raises(ScenarioError, match="kind"):
        ScenarioSpec.from_dict(minimal_document(trace={"kind": "no-such"}))


def test_unknown_recipe_params_rejected_at_build():
    from repro.scenarios.generators import build_scenario_graph

    spec = ScenarioSpec.from_dict(
        minimal_document(
            graph={
                "recipe": "planted",
                "num_vertices": 60,
                "params": {"not_a_knob": 3},
            }
        )
    )
    with pytest.raises(ScenarioError, match="not_a_knob"):
        build_scenario_graph(spec)


def test_radius_beyond_engine_max_radius_rejected():
    document = minimal_document(
        queries={"theta": 0.1, "radius": 3}, engine={"max_radius": 2}
    )
    with pytest.raises(ScenarioError, match="max_radius"):
        ScenarioSpec.from_dict(document)


def test_spec_round_trips_through_to_dict():
    spec = ScenarioSpec.from_dict(minimal_document())
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.to_dict() == spec.to_dict()


def test_scenario_from_json_accepts_string_and_dict():
    document = minimal_document()
    assert scenario_from_json(json.dumps(document)) == ScenarioSpec.from_dict(document)
    assert scenario_from_json(document) == ScenarioSpec.from_dict(document)


def test_load_scenario_file_json(tmp_path):
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(minimal_document()))
    assert load_scenario_file(path) == ScenarioSpec.from_dict(minimal_document())


def test_load_scenario_file_toml(tmp_path):
    tomllib = pytest.importorskip("tomllib")
    assert tomllib is not None
    path = tmp_path / "scenario.toml"
    path.write_text(
        "\n".join(
            [
                "[scenario]",
                'name = "t"',
                "seed = 7",
                "[graph]",
                'recipe = "planted"',
                "num_vertices = 60",
                "[probabilities]",
                'model = "as_generated"',
                "[trace]",
                'kind = "bursty"',
                "operations = 6",
                "[queries]",
                "theta = 0.1",
                "[gates]",
            ]
        )
    )
    assert load_scenario_file(path) == ScenarioSpec.from_dict(minimal_document())


def test_load_scenario_file_rejects_unknown_suffix(tmp_path):
    path = tmp_path / "scenario.yaml"
    path.write_text("scenario: {}")
    with pytest.raises(ScenarioError):
        load_scenario_file(path)


def test_bad_fraction_and_nonpositive_values_rejected():
    with pytest.raises(ScenarioError):
        ScenarioSpec.from_dict(
            minimal_document(trace={"kind": "bursty", "update_share": 1.5})
        )
    with pytest.raises(ScenarioError):
        ScenarioSpec.from_dict(
            minimal_document(graph={"recipe": "planted", "num_vertices": 0})
        )
