"""Trace synthesis: determinism, composition and sequential validity."""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import ScenarioError
from repro.scenarios.generators import build_scenario_graph
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.traces import OP_DTOPL, OP_TOPL, OP_UPDATE, synthesize_trace


def small_spec(seed: int = 11, **trace_overrides) -> ScenarioSpec:
    trace = {
        "kind": "bursty",
        "operations": 12,
        "update_share": 0.25,
        "edits_per_update": 3,
        "dtopl_share": 0.25,
    }
    trace.update(trace_overrides)
    return ScenarioSpec.from_dict(
        {
            "scenario": {"name": "trace-test", "seed": seed},
            "graph": {"recipe": "small_world", "num_vertices": 80, "keyword_domain": 8},
            "probabilities": {"model": "as_generated"},
            "trace": trace,
            "queries": {"theta": 0.1},
        }
    )


@pytest.fixture(scope="module")
def graph():
    return build_scenario_graph(small_spec())


def test_same_spec_and_seed_give_identical_traces(graph):
    spec = small_spec(seed=11)
    first = synthesize_trace(graph, spec)
    second = synthesize_trace(graph, spec)
    assert first.fingerprint() == second.fingerprint()
    assert first.to_json() == second.to_json()


def test_graph_generation_is_seed_deterministic():
    spec = small_spec(seed=11)
    one, two = build_scenario_graph(spec), build_scenario_graph(spec)
    assert sorted(one.vertices()) == sorted(two.vertices())
    assert sorted(map(sorted, one.edges())) == sorted(map(sorted, two.edges()))


def test_different_seed_changes_the_trace(graph):
    assert (
        synthesize_trace(graph, small_spec(seed=11)).fingerprint()
        != synthesize_trace(graph, small_spec(seed=12)).fingerprint()
    )


def test_trace_composition_matches_spec(graph):
    spec = small_spec()
    trace = synthesize_trace(graph, spec)
    assert len(trace.ops) == spec.trace.operations
    assert trace.num_updates == round(spec.trace.operations * spec.trace.update_share)
    assert trace.num_queries == spec.trace.operations - trace.num_updates
    assert trace.num_topl + trace.num_dtopl == trace.num_queries
    kinds = {op.kind for op in trace.ops}
    assert kinds <= {OP_TOPL, OP_DTOPL, OP_UPDATE}


@pytest.mark.parametrize("kind", ["bursty", "hot_key_skew", "adversarial_churn"])
def test_every_trace_kind_synthesizes_and_applies(graph, kind):
    spec = small_spec(kind=kind)
    trace = synthesize_trace(graph, spec)
    # Sequential validity: edit batches must apply cleanly in trace order.
    evolving = graph.copy()
    for op in trace.ops:
        if op.kind == OP_UPDATE:
            op.edits.apply_to(evolving)
    assert evolving.num_vertices() > 0


def test_trace_requires_keywords():
    spec = small_spec()
    bare = build_scenario_graph(spec).copy()
    for vertex in bare.vertices():
        bare.set_keywords(vertex, ())
    with pytest.raises(ScenarioError, match="keyword"):
        synthesize_trace(bare, spec)


def test_trace_summary_and_json_shapes(graph):
    trace = synthesize_trace(graph, small_spec())
    summary = trace.summary()
    assert summary["operations"] == len(trace.ops)
    document = trace.to_json()
    assert document["kind"] == "bursty"
    assert len(document["ops"]) == len(trace.ops)


def test_spec_equality_is_what_determinism_keys_on():
    # Frozen dataclasses: identical documents give equal specs, so the
    # "same spec + same seed" contract is well-defined.
    assert small_spec(seed=11) == small_spec(seed=11)
    assert dataclasses.replace(small_spec(seed=11)) == small_spec(seed=11)
