"""The mini JSON-schema validator and the checked-in BENCH schema."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ScenarioError
from repro.scenarios.bench_schema import (
    SCHEMA_PATH,
    load_bench_schema,
    validate_bench_document,
    validate_bench_file,
    validate_instance,
)
from repro.workloads.reporting import bench_envelope


def envelope(**overrides) -> dict:
    document = bench_envelope("unit", seed=1, speedup_factor=2.0, equivalence=True)
    document.update(overrides)
    return document


def test_schema_file_is_checked_in_and_loads():
    assert SCHEMA_PATH.exists()
    schema = load_bench_schema()
    assert set(schema["required"]) == {
        "bench",
        "recorded_unix",
        "cpu_count",
        "seed",
        "speedup",
        "equivalence",
    }


def test_uniform_envelope_validates():
    assert validate_bench_document(envelope()) == []


@pytest.mark.parametrize(
    "missing", ["bench", "recorded_unix", "cpu_count", "seed", "speedup", "equivalence"]
)
def test_each_required_field_is_enforced(missing):
    document = envelope()
    del document[missing]
    errors = validate_bench_document(document)
    assert errors and missing in errors[0]


def test_wrong_types_are_reported_with_paths():
    errors = validate_bench_document(envelope(cpu_count="four"))
    assert any("cpu_count" in error for error in errors)
    # Booleans are not integers/numbers, despite bool subclassing int.
    assert validate_bench_document(envelope(recorded_unix=True))
    assert validate_bench_document(envelope(speedup=True))


def test_minimum_bounds_are_enforced():
    assert validate_bench_document(envelope(cpu_count=0))
    assert validate_bench_document(envelope(speedup=-0.5))
    assert validate_bench_document(envelope(recorded_unix=-1))


def test_extra_top_level_fields_are_allowed():
    # Recorders carry bench-specific payloads beside the envelope.
    assert validate_bench_document(envelope(dataset="x", measurements={})) == []


def test_scenarios_sections_are_validated_recursively():
    document = envelope(scenarios={"s": {"scenario": "s"}})
    errors = validate_bench_document(document)
    assert any("scenarios" in error for error in errors)


def test_validate_instance_supports_enum_and_items():
    schema = {"type": "array", "items": {"type": "string", "enum": ["a", "b"]}}
    assert validate_instance(["a", "b"], schema) == []
    assert validate_instance(["c"], schema)
    with pytest.raises(ScenarioError):
        validate_instance(1, {"type": "no-such-type"})


def test_validate_bench_file_reports_missing_and_malformed(tmp_path):
    assert validate_bench_file(tmp_path / "absent.json")
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert validate_bench_file(broken)
    good = tmp_path / "good.json"
    good.write_text(json.dumps(envelope()))
    assert validate_bench_file(good) == []


def test_committed_baselines_validate():
    # The repo's own BENCH_*.json files must satisfy the schema they ship with.
    from pathlib import Path

    baselines = sorted(Path(__file__).resolve().parents[2].glob("BENCH_*.json"))
    assert baselines, "no committed BENCH_*.json baselines found"
    for path in baselines:
        assert validate_bench_file(path) == [], path.name
