"""Unit tests for query parameter objects."""

import pytest

from repro.exceptions import QueryParameterError
from repro.query.params import (
    DTopLQuery,
    TopLQuery,
    make_dtopl_query,
    make_topl_query,
)


class TestTopLQuery:
    def test_valid_construction(self):
        query = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.1, top_l=5)
        assert query.keywords == frozenset({"movies", "books"})
        assert query.k == 3
        assert query.top_l == 5

    def test_defaults_match_table_iii(self):
        query = make_topl_query({"movies"})
        assert query.k == 4
        assert query.radius == 2
        assert query.theta == pytest.approx(0.2)
        assert query.top_l == 5

    def test_keywords_accept_any_iterable(self):
        query = make_topl_query(["movies", "movies", "books"])
        assert query.keywords == frozenset({"movies", "books"})

    def test_empty_keywords_rejected(self):
        with pytest.raises(QueryParameterError):
            make_topl_query(set())

    def test_non_string_keywords_rejected(self):
        with pytest.raises(QueryParameterError):
            make_topl_query({"movies", 7})
        with pytest.raises(QueryParameterError):
            make_topl_query({""})

    def test_invalid_k(self):
        with pytest.raises(QueryParameterError):
            make_topl_query({"movies"}, k=1)

    def test_invalid_radius(self):
        with pytest.raises(QueryParameterError):
            make_topl_query({"movies"}, radius=0)

    def test_invalid_theta(self):
        with pytest.raises(QueryParameterError):
            make_topl_query({"movies"}, theta=1.0)
        with pytest.raises(QueryParameterError):
            make_topl_query({"movies"}, theta=-0.1)

    def test_invalid_top_l(self):
        with pytest.raises(QueryParameterError):
            make_topl_query({"movies"}, top_l=0)

    def test_with_overrides_revalidates(self):
        query = make_topl_query({"movies"})
        updated = query.with_overrides(top_l=9)
        assert updated.top_l == 9
        assert updated.keywords == query.keywords
        with pytest.raises(QueryParameterError):
            query.with_overrides(k=0)

    def test_describe(self):
        query = make_topl_query({"movies", "books"}, k=3, radius=1, theta=0.3, top_l=2)
        assert query.describe() == {"|Q|": 2, "k": 3, "r": 1, "theta": 0.3, "L": 2}

    def test_frozen(self):
        query = make_topl_query({"movies"})
        with pytest.raises(Exception):
            query.k = 9


class TestDTopLQuery:
    def test_valid_construction(self):
        query = make_dtopl_query({"movies"}, top_l=4, candidate_factor=3)
        assert query.num_candidates == 12
        assert query.top_l == 4
        assert query.keywords == frozenset({"movies"})

    def test_candidate_query_scales_l(self):
        query = make_dtopl_query({"movies"}, top_l=2, candidate_factor=5)
        candidate_query = query.candidate_query()
        assert isinstance(candidate_query, TopLQuery)
        assert candidate_query.top_l == 10
        assert candidate_query.keywords == query.keywords

    def test_invalid_candidate_factor(self):
        with pytest.raises(QueryParameterError):
            make_dtopl_query({"movies"}, candidate_factor=0)

    def test_base_must_be_topl_query(self):
        with pytest.raises(QueryParameterError):
            DTopLQuery(base="not-a-query")  # type: ignore[arg-type]

    def test_property_passthrough(self):
        query = make_dtopl_query({"movies"}, k=3, radius=1, theta=0.1, top_l=2)
        assert query.k == 3
        assert query.radius == 1
        assert query.theta == pytest.approx(0.1)

    def test_describe_includes_n(self):
        query = make_dtopl_query({"movies"}, candidate_factor=7)
        assert query.describe()["n"] == 7
