"""Unit tests for result value objects."""

import pytest

from repro.influence.propagation import InfluencedCommunity
from repro.query.results import (
    DTopLResult,
    QueryStatistics,
    SeedCommunity,
    TopLResult,
)


def make_community(center, members, cpp, k=3, radius=2):
    influenced = InfluencedCommunity(
        seed_vertices=frozenset(members), cpp=dict(cpp), threshold=0.1
    )
    return SeedCommunity(
        center=center, vertices=frozenset(members), influenced=influenced, k=k, radius=radius
    )


@pytest.fixture
def sample_communities():
    first = make_community(1, {1, 2}, {1: 1.0, 2: 1.0, 3: 0.5})
    second = make_community(5, {5, 6}, {5: 1.0, 6: 1.0})
    return first, second


class TestSeedCommunity:
    def test_score_and_counts(self, sample_communities):
        first, _ = sample_communities
        assert first.score == pytest.approx(2.5)
        assert first.num_influenced == 3
        assert first.num_influenced_outside == 1
        assert len(first) == 2

    def test_summary(self, sample_communities):
        first, _ = sample_communities
        summary = first.summary()
        assert summary["center"] == 1
        assert summary["size"] == 2
        assert summary["score"] == pytest.approx(2.5)
        assert summary["k"] == 3


class TestQueryStatistics:
    def test_total_pruned(self):
        statistics = QueryStatistics(
            pruned_by_keyword=2, pruned_by_support=3, pruned_by_score=1, pruned_index_entries=4
        )
        assert statistics.total_pruned == 10

    def test_as_dict(self):
        payload = QueryStatistics(candidates_examined=7).as_dict()
        assert payload["candidates_examined"] == 7
        assert payload["total_pruned"] == 0


class TestTopLResult:
    def test_ordering_helpers(self, sample_communities):
        first, second = sample_communities
        result = TopLResult(communities=(first, second))
        assert len(result) == 2
        assert result.best is first
        assert result[1] is second
        assert result.scores == pytest.approx((2.5, 2.0))
        assert [row["center"] for row in result.summary_rows()] == [1, 5]

    def test_empty_result(self):
        result = TopLResult(communities=())
        assert result.best is None
        assert result.scores == ()
        assert list(result) == []


class TestDTopLResult:
    def test_fields(self, sample_communities):
        first, second = sample_communities
        result = DTopLResult(
            communities=(first, second),
            diversity_score=4.5,
            increment_evaluations=3,
            candidates_considered=6,
        )
        assert len(result) == 2
        assert result.diversity_score == pytest.approx(4.5)
        assert result[0] is first
        assert len(result.summary_rows()) == 2
