"""Unit and integration tests for DTopL-ICDE processing (Algorithm 4)."""

import pytest

from repro.pruning.diversity import diversity_score
from repro.query.baselines.greedy_wop import greedy_without_pruning, greedy_wop_dtopl
from repro.query.baselines.optimal import optimal_dtopl, optimal_selection
from repro.query.dtopl import DTopLProcessor, dtopl_icde, greedy_select_diversified
from repro.query.params import make_dtopl_query, make_topl_query
from repro.query.topl import topl_icde


class TestGreedySelection:
    def _candidates(self, graph, keywords, k=3, radius=2, theta=0.1, count=10):
        query = make_topl_query(keywords, k=k, radius=radius, theta=theta, top_l=count)
        return list(topl_icde(graph, query).communities)

    def test_lazy_and_eager_greedy_agree(self, small_world_graph):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:8])
        candidates = self._candidates(small_world_graph, keywords)
        lazy, lazy_evaluations = greedy_select_diversified(candidates, 3)
        eager, eager_evaluations = greedy_without_pruning(candidates, 3)
        # The first pick is unambiguous; later picks may differ only on
        # zero-gain ties, so the achieved diversity score must be identical.
        assert lazy[0].vertices == eager[0].vertices
        assert diversity_score([c.influenced for c in lazy]) == pytest.approx(
            diversity_score([c.influenced for c in eager])
        )
        # Lazy evaluation never performs more gain computations than eager.
        assert lazy_evaluations <= eager_evaluations

    def test_greedy_selects_requested_count(self, two_cliques_bridge):
        candidates = self._candidates(
            two_cliques_bridge, {"movies", "books"}, k=4, radius=1, count=5
        )
        selection, _ = greedy_select_diversified(candidates, 2)
        assert len(selection) == min(2, len(candidates))

    def test_greedy_handles_fewer_candidates_than_l(self, two_cliques_bridge):
        candidates = self._candidates(
            two_cliques_bridge, {"movies"}, k=4, radius=1, count=5
        )
        selection, _ = greedy_select_diversified(candidates, 10)
        assert len(selection) == len(candidates)

    def test_greedy_empty_input(self):
        selection, evaluations = greedy_select_diversified([], 3)
        assert selection == []
        assert evaluations == 0

    def test_first_pick_is_highest_influence(self, small_world_graph):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:8])
        candidates = self._candidates(small_world_graph, keywords)
        if candidates:
            selection, _ = greedy_select_diversified(candidates, 1)
            assert selection[0].score == pytest.approx(max(c.score for c in candidates))

    def test_greedy_matches_optimal_on_tiny_instances(self, two_cliques_bridge):
        candidates = self._candidates(
            two_cliques_bridge, {"movies", "books"}, k=3, radius=1, count=6
        )
        greedy, _ = greedy_select_diversified(candidates, 2)
        optimal, optimal_score, _ = optimal_selection(candidates, 2)
        greedy_score = diversity_score([c.influenced for c in greedy])
        # (1 - 1/e) guarantee; on these tiny instances greedy is in fact optimal.
        assert greedy_score >= 0.63 * optimal_score
        assert greedy_score <= optimal_score + 1e-9


class TestDTopLProcessing:
    def test_returns_l_communities(self, small_world_graph, small_engine):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:8])
        query = make_dtopl_query(keywords, k=3, radius=2, theta=0.2, top_l=3, candidate_factor=2)
        result = DTopLProcessor(small_world_graph, index=small_engine.index).query(query)
        assert len(result) <= 3
        assert result.diversity_score >= 0.0
        assert result.candidates_considered <= query.num_candidates

    def test_diversity_score_consistent_with_selection(self, small_world_graph, small_engine):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:8])
        query = make_dtopl_query(keywords, k=3, radius=2, theta=0.2, top_l=3, candidate_factor=2)
        result = DTopLProcessor(small_world_graph, index=small_engine.index).query(query)
        recomputed = diversity_score([c.influenced for c in result])
        assert result.diversity_score == pytest.approx(recomputed)

    def test_diversity_score_at_most_sum_of_scores(self, small_world_graph, small_engine):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:8])
        query = make_dtopl_query(keywords, k=3, radius=2, theta=0.2, top_l=3, candidate_factor=2)
        result = DTopLProcessor(small_world_graph, index=small_engine.index).query(query)
        assert result.diversity_score <= sum(c.score for c in result) + 1e-9

    def test_convenience_wrapper(self, two_cliques_bridge):
        query = make_dtopl_query(
            {"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2, candidate_factor=2
        )
        result = dtopl_icde(two_cliques_bridge, query)
        assert len(result) == 2

    def test_diversified_picks_disjoint_cliques(self, two_cliques_bridge):
        query = make_dtopl_query(
            {"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2, candidate_factor=2
        )
        result = dtopl_icde(two_cliques_bridge, query)
        picked = {community.vertices for community in result}
        assert frozenset(range(4)) in picked
        assert frozenset(range(6, 10)) in picked


class TestAgainstBaselines:
    def test_greedy_wp_equals_greedy_wop_selection(self, small_world_graph, small_engine):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:8])
        query = make_dtopl_query(keywords, k=3, radius=2, theta=0.2, top_l=3, candidate_factor=3)
        with_pruning = DTopLProcessor(small_world_graph, index=small_engine.index).query(query)
        without_pruning = greedy_wop_dtopl(small_world_graph, query, index=small_engine.index)
        assert with_pruning.diversity_score == pytest.approx(without_pruning.diversity_score)

    def test_greedy_close_to_optimal(self, small_world_graph, small_engine):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:8])
        query = make_dtopl_query(keywords, k=3, radius=2, theta=0.2, top_l=2, candidate_factor=2)
        greedy = DTopLProcessor(small_world_graph, index=small_engine.index).query(query)
        optimal = optimal_dtopl(small_world_graph, query, index=small_engine.index)
        if optimal.diversity_score > 0:
            accuracy = greedy.diversity_score / optimal.diversity_score
            assert accuracy >= 0.63
            assert accuracy <= 1.0 + 1e-9

    def test_optimal_at_least_as_good_as_greedy(self, two_cliques_bridge):
        query = make_dtopl_query(
            {"movies", "books"}, k=3, radius=1, theta=0.1, top_l=2, candidate_factor=3
        )
        greedy = dtopl_icde(two_cliques_bridge, query)
        optimal = optimal_dtopl(two_cliques_bridge, query)
        assert optimal.diversity_score >= greedy.diversity_score - 1e-9
