"""Unit tests for seed-community extraction (Definition 2)."""

from repro.graph.social_network import SocialNetwork
from repro.query.params import make_topl_query
from repro.query.seed import (
    extract_seed_community,
    is_valid_seed_community,
    seed_community_candidates,
)


class TestExtractSeedCommunity:
    def test_clique_is_extracted(self, clique5):
        query = make_topl_query({"movies"}, k=4, radius=1, theta=0.1, top_l=1)
        community = extract_seed_community(clique5, 0, query)
        assert community == frozenset(range(5))
        assert is_valid_seed_community(clique5, community, 0, query)

    def test_center_without_query_keyword_gives_none(self, clique5):
        query = make_topl_query({"gaming"}, k=3, radius=1, theta=0.1, top_l=1)
        assert extract_seed_community(clique5, 0, query) is None

    def test_keyword_filter_removes_vertices(self, two_cliques_bridge):
        query = make_topl_query({"movies"}, k=4, radius=2, theta=0.1, top_l=1)
        community = extract_seed_community(two_cliques_bridge, 0, query)
        # Only clique A carries "movies"; bridge/clique B are filtered out.
        assert community == frozenset(range(4))

    def test_truss_constraint_removes_weak_parts(self, triangle_graph):
        query = make_topl_query({"movies", "books", "sports"}, k=3, radius=2, theta=0.1, top_l=1)
        community = extract_seed_community(triangle_graph, "a", query)
        # Vertex d carries a query keyword but its only edge has no triangle.
        assert community == frozenset({"a", "b", "c"})

    def test_too_strict_truss_gives_none(self, triangle_graph):
        query = make_topl_query({"movies", "books"}, k=4, radius=2, theta=0.1, top_l=1)
        assert extract_seed_community(triangle_graph, "a", query) is None

    def test_unknown_center_gives_none(self, clique5):
        query = make_topl_query({"movies"}, k=3, radius=1, theta=0.1, top_l=1)
        assert extract_seed_community(clique5, 99, query) is None

    def test_radius_constraint_respected(self):
        """A long chain of triangles is cut at the radius even though the truss allows it."""
        graph = SocialNetwork()
        # Chain of triangles: (0,1,2), (2,3,4), (4,5,6) ... each adjacent pair shares a vertex.
        for i in range(0, 8, 2):
            graph.add_edge(i, i + 1, 0.6)
            graph.add_edge(i + 1, i + 2, 0.6)
            graph.add_edge(i, i + 2, 0.6)
        for vertex in graph.vertices():
            graph.set_keywords(vertex, {"movies"})
        query = make_topl_query({"movies"}, k=3, radius=2, theta=0.1, top_l=1)
        community = extract_seed_community(graph, 0, query)
        assert community is not None
        assert all(v in community for v in (0, 1, 2))
        # Vertices at distance > 2 in the chain must be excluded.
        assert 5 not in community
        assert 6 not in community
        assert is_valid_seed_community(graph, community, 0, query)

    def test_interleaved_constraints_reach_fixed_point(self):
        """Removing a far vertex breaks the truss of nearer ones, cascading correctly."""
        graph = SocialNetwork()
        # Triangle (0,1,2) near the centre plus a triangle (2,3,4) where 3 and
        # 4 are 2+ hops away from 0 only through 2.
        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5), (5, 3)]
        for u, v in edges:
            graph.add_edge(u, v, 0.6)
        for vertex in graph.vertices():
            graph.set_keywords(vertex, {"movies"})
        query = make_topl_query({"movies"}, k=3, radius=1, theta=0.1, top_l=1)
        community = extract_seed_community(graph, 0, query)
        assert community == frozenset({0, 1, 2})

    def test_result_always_contains_center(self, small_world_graph):
        query = make_topl_query(
            set(list(small_world_graph.keyword_domain())[:5]), k=3, radius=2, theta=0.2, top_l=1
        )
        for center in list(small_world_graph.vertices())[:30]:
            community = extract_seed_community(small_world_graph, center, query)
            if community is not None:
                assert center in community
                assert is_valid_seed_community(small_world_graph, community, center, query)


class TestSeedCommunityCandidates:
    def test_candidates_keyed_by_center(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=1)
        candidates = seed_community_candidates(two_cliques_bridge, query)
        assert set(candidates) == set(range(4)) | set(range(6, 10))
        assert candidates[0] == frozenset(range(4))
        assert candidates[7] == frozenset(range(6, 10))

    def test_restricted_centers(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=1)
        candidates = seed_community_candidates(two_cliques_bridge, query, centers=[0, 4])
        assert set(candidates) == {0}


class TestIsValidSeedCommunity:
    def test_rejects_center_outside(self, clique5):
        query = make_topl_query({"movies"}, k=3, radius=1, theta=0.1, top_l=1)
        assert not is_valid_seed_community(clique5, frozenset({1, 2, 3}), 0, query)

    def test_rejects_disconnected(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=3, radius=3, theta=0.1, top_l=1)
        vertices = frozenset(range(4)) | frozenset(range(6, 10))
        assert not is_valid_seed_community(two_cliques_bridge, vertices, 0, query)

    def test_rejects_keyword_violation(self, two_cliques_bridge):
        query = make_topl_query({"movies"}, k=3, radius=3, theta=0.1, top_l=1)
        vertices = frozenset(range(5))  # vertex 4 has only "travel"
        assert not is_valid_seed_community(two_cliques_bridge, vertices, 0, query)

    def test_rejects_truss_violation(self, triangle_graph):
        query = make_topl_query({"movies", "books", "sports"}, k=3, radius=2, theta=0.1, top_l=1)
        assert not is_valid_seed_community(
            triangle_graph, frozenset({"a", "b", "c", "d"}), "a", query
        )

    def test_accepts_extractor_output(self, two_cliques_bridge):
        query = make_topl_query({"books"}, k=4, radius=1, theta=0.1, top_l=1)
        community = extract_seed_community(two_cliques_bridge, 7, query)
        assert is_valid_seed_community(two_cliques_bridge, community, 7, query)
