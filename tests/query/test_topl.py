"""Unit and integration tests for the online TopL-ICDE algorithm (Algorithm 3)."""

import pytest

from repro.index.tree import build_tree_index
from repro.pruning.stats import ABLATION_CONFIGS, PruningConfig
from repro.query.baselines.bruteforce import bruteforce_topl
from repro.query.params import make_topl_query
from repro.query.seed import is_valid_seed_community
from repro.query.topl import TopLProcessor, topl_icde


class TestTopLOnSmallGraphs:
    def test_finds_both_cliques(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2)
        result = topl_icde(two_cliques_bridge, query)
        assert len(result) == 2
        found = {community.vertices for community in result}
        assert frozenset(range(4)) in found
        assert frozenset(range(6, 10)) in found

    def test_results_sorted_by_score(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2)
        result = topl_icde(two_cliques_bridge, query)
        scores = list(result.scores)
        assert scores == sorted(scores, reverse=True)

    def test_top_one_returns_single_best(self, two_cliques_bridge):
        both = topl_icde(
            two_cliques_bridge,
            make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2),
        )
        top_one = topl_icde(
            two_cliques_bridge,
            make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=1),
        )
        assert len(top_one) == 1
        assert top_one.best.score == pytest.approx(both.scores[0])

    def test_no_matching_keyword_gives_empty(self, two_cliques_bridge):
        query = make_topl_query({"gaming"}, k=3, radius=1, theta=0.1, top_l=2)
        result = topl_icde(two_cliques_bridge, query)
        assert len(result) == 0

    def test_too_strict_truss_gives_empty(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=5, radius=2, theta=0.1, top_l=2)
        result = topl_icde(two_cliques_bridge, query)
        assert len(result) == 0

    def test_every_result_is_a_valid_seed_community(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.1, top_l=5)
        result = topl_icde(two_cliques_bridge, query)
        for community in result:
            assert is_valid_seed_community(
                two_cliques_bridge, community.vertices, community.center, query
            )

    def test_influenced_community_respects_threshold(self, two_cliques_bridge):
        query = make_topl_query({"movies"}, k=4, radius=1, theta=0.2, top_l=1)
        result = topl_icde(two_cliques_bridge, query)
        best = result.best
        assert best is not None
        assert all(p >= 0.2 for p in best.influenced.cpp.values())

    def test_results_deduplicated(self, clique5):
        # Every vertex of the clique extracts the same community; only one copy
        # may be returned.
        query = make_topl_query({"movies"}, k=4, radius=1, theta=0.1, top_l=5)
        result = topl_icde(clique5, query)
        assert len(result) == 1

    def test_radius_beyond_precomputed_rejected(self, two_cliques_bridge):
        index = build_tree_index(two_cliques_bridge, max_radius=2)
        processor = TopLProcessor(two_cliques_bridge, index=index)
        query = make_topl_query({"movies"}, k=3, radius=3, theta=0.1, top_l=1)
        with pytest.raises(Exception):
            processor.query(query)

    def test_empty_graph(self):
        from repro.graph.social_network import SocialNetwork

        graph = SocialNetwork()
        index = build_tree_index(graph, max_radius=1)
        processor = TopLProcessor(graph, index=index)
        result = processor.query(make_topl_query({"movies"}, k=3, radius=1, theta=0.1, top_l=2))
        assert len(result) == 0


class TestAgainstBruteForce:
    """The index-based algorithm must return the same answers as exhaustive search."""

    @pytest.mark.parametrize("k,radius,theta,top_l", [(3, 1, 0.1, 3), (3, 2, 0.2, 5), (4, 2, 0.1, 2)])
    def test_matches_bruteforce_on_small_world(
        self, small_world_graph, small_engine, k, radius, theta, top_l
    ):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:6])
        query = make_topl_query(keywords, k=k, radius=radius, theta=theta, top_l=top_l)
        indexed = small_engine.topl(query)
        brute = bruteforce_topl(small_world_graph, query)
        assert list(indexed.scores) == pytest.approx(list(brute.scores))

    def test_matches_bruteforce_on_planted_graph(self, planted_graph):
        query = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.1, top_l=4)
        indexed = topl_icde(planted_graph, query)
        brute = bruteforce_topl(planted_graph, query)
        assert list(indexed.scores) == pytest.approx(list(brute.scores))


class TestPruningConfigurations:
    """All ablation configurations must return the same answers (pruning is safe)."""

    def test_all_configs_agree(self, small_world_graph, small_engine):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:8])
        query = make_topl_query(keywords, k=3, radius=2, theta=0.2, top_l=3)
        reference = None
        for config in ABLATION_CONFIGS + (PruningConfig.none_enabled(),):
            processor = TopLProcessor(
                small_world_graph, index=small_engine.index, pruning=config
            )
            result = processor.query(query)
            scores = [round(score, 9) for score in result.scores]
            if reference is None:
                reference = scores
            else:
                assert scores == pytest.approx(reference)

    def test_more_pruning_never_scores_more_candidates(self, small_world_graph, small_engine):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:8])
        query = make_topl_query(keywords, k=3, radius=2, theta=0.2, top_l=3)
        scored = []
        for config in ABLATION_CONFIGS:
            processor = TopLProcessor(
                small_world_graph, index=small_engine.index, pruning=config
            )
            result = processor.query(query)
            scored.append(result.statistics.communities_scored)
        assert scored[0] >= scored[1] >= scored[2]


class TestStatistics:
    def test_statistics_populated(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2)
        result = topl_icde(two_cliques_bridge, query)
        statistics = result.statistics
        assert statistics.visited_index_nodes >= 1
        assert statistics.candidates_examined >= 1
        assert statistics.communities_scored >= 2
        assert statistics.elapsed_seconds > 0
