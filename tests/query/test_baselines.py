"""Unit tests for the baseline methods (ATindex, brute force, k-core comparator)."""

import pytest

from repro.query.baselines.atindex import ATIndex, atindex_topl
from repro.query.baselines.bruteforce import all_seed_communities, bruteforce_topl
from repro.query.baselines.kcore_baseline import compare_with_kcore, kcore_community
from repro.query.params import make_topl_query
from repro.query.topl import topl_icde


class TestBruteForce:
    def test_matches_expected_communities(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2)
        result = bruteforce_topl(two_cliques_bridge, query)
        found = {community.vertices for community in result}
        assert found == {frozenset(range(4)), frozenset(range(6, 10))}

    def test_restricted_centers(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=5)
        result = bruteforce_topl(two_cliques_bridge, query, centers=[0, 1])
        assert len(result) == 1
        assert result.best.vertices == frozenset(range(4))

    def test_all_seed_communities_distinct(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=1)
        communities = all_seed_communities(two_cliques_bridge, query)
        vertex_sets = [community.vertices for community in communities]
        assert len(vertex_sets) == len(set(vertex_sets)) == 2


class TestATIndex:
    def test_offline_filter(self, two_cliques_bridge):
        index = ATIndex.build(two_cliques_bridge)
        query = make_topl_query({"movies", "books", "travel"}, k=4, radius=1, theta=0.1, top_l=2)
        centers = index.candidate_centers(two_cliques_bridge, query)
        # Bridge vertices have trussness 2 < 4 and are filtered out.
        assert 4 not in centers
        assert 5 not in centers
        assert 0 in centers

    def test_keyword_filter_applied(self, two_cliques_bridge):
        index = ATIndex.build(two_cliques_bridge)
        query = make_topl_query({"books"}, k=4, radius=1, theta=0.1, top_l=2)
        centers = index.candidate_centers(two_cliques_bridge, query)
        assert set(centers) == set(range(6, 10))

    def test_same_answers_as_our_method(self, small_world_graph, small_engine):
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:6])
        query = make_topl_query(keywords, k=3, radius=2, theta=0.2, top_l=3)
        ours = small_engine.topl(query)
        baseline = atindex_topl(small_world_graph, query)
        assert list(baseline.scores) == pytest.approx(list(ours.scores))

    def test_candidate_centers_all_satisfy_filters(self, small_world_graph):
        from repro.truss.decomposition import truss_decomposition

        index = ATIndex.build(small_world_graph)
        keywords = set(list(sorted(small_world_graph.keyword_domain()))[:6])
        query = make_topl_query(keywords, k=3, radius=2, theta=0.2, top_l=3)
        decomposition = truss_decomposition(small_world_graph)
        for center in index.candidate_centers(small_world_graph, query):
            assert decomposition.trussness_of_vertex(center) >= query.k
            assert small_world_graph.keywords(center) & query.keywords

    def test_center_sampling(self, two_cliques_bridge):
        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=5)
        result = atindex_topl(two_cliques_bridge, query, centers=[7, 8])
        assert len(result) == 1
        assert result.best.vertices == frozenset(range(6, 10))


class TestKCoreBaseline:
    def test_kcore_community_extracted(self, two_cliques_bridge):
        community = kcore_community(two_cliques_bridge, 0, k=3, theta=0.1)
        assert community is not None
        assert community.vertices == frozenset(range(4))
        assert community.score > 0

    def test_center_not_in_core_returns_none(self, two_cliques_bridge):
        assert kcore_community(two_cliques_bridge, 4, k=3, theta=0.1) is None

    def test_radius_scoping(self, two_cliques_bridge):
        scoped = kcore_community(two_cliques_bridge, 0, k=2, theta=0.1, radius=1)
        assert scoped is not None
        assert scoped.vertices <= frozenset(range(4))

    def test_invalid_theta(self, two_cliques_bridge):
        with pytest.raises(Exception):
            kcore_community(two_cliques_bridge, 0, k=3, theta=1.0)

    def test_comparison_rows(self, two_cliques_bridge):
        query = make_topl_query({"movies"}, k=4, radius=1, theta=0.1, top_l=1)
        topl = topl_icde(two_cliques_bridge, query).best
        rows = compare_with_kcore(two_cliques_bridge, topl, k=3, theta=0.1)
        assert set(rows) == {"topl_icde", "kcore"}
        assert rows["topl_icde"]["seed_size"] == 4
        assert rows["kcore"]["seed_size"] == 4
        assert rows["topl_icde"]["score"] > 0

    def test_comparison_with_missing_kcore(self, triangle_graph):
        query = make_topl_query({"movies", "books"}, k=3, radius=1, theta=0.1, top_l=1)
        topl = topl_icde(triangle_graph, query).best
        rows = compare_with_kcore(triangle_graph, topl, k=5, theta=0.1)
        assert rows["kcore"]["seed_size"] == 0
        assert rows["kcore"]["score"] == 0.0
