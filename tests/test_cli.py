"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.io import save_graph_json


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    """A small graph JSON shared by the CLI tests (generated through the CLI itself)."""
    path = tmp_path_factory.mktemp("cli") / "uni.json"
    exit_code = main(
        [
            "generate",
            "--dataset",
            "uni",
            "--vertices",
            "150",
            "--seed",
            "5",
            "--out",
            str(path),
        ]
    )
    assert exit_code == 0
    return path


@pytest.fixture(scope="module")
def index_file(tmp_path_factory, graph_file):
    path = tmp_path_factory.mktemp("cli-index") / "uni.index.json"
    exit_code = main(
        [
            "build-index",
            str(graph_file),
            "--out",
            str(path),
            "--max-radius",
            "2",
        ]
    )
    assert exit_code == 0
    return path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x.json"])
        assert args.dataset == "uni"
        assert args.vertices == 1000

    def test_topl_defaults_match_table_iii(self):
        args = build_parser().parse_args(["topl", "graph.json"])
        assert args.k == 4
        assert args.radius == 2
        assert args.theta == pytest.approx(0.2)
        assert args.top_l == 5


class TestGenerateAndStats:
    def test_generate_writes_loadable_json(self, graph_file):
        payload = json.loads(graph_file.read_text())
        assert payload["name"] == "Uni"
        assert len(payload["vertices"]) > 0

    def test_generate_optional_edge_list(self, tmp_path):
        edge_list = tmp_path / "graph.tsv"
        exit_code = main(
            [
                "generate",
                "--dataset",
                "zipf",
                "--vertices",
                "60",
                "--out",
                str(tmp_path / "g.json"),
                "--edge-list",
                str(edge_list),
            ]
        )
        assert exit_code == 0
        assert edge_list.exists()
        assert "\t" in edge_list.read_text().splitlines()[-1]

    def test_stats_prints_table(self, graph_file, capsys):
        assert main(["stats", str(graph_file)]) == 0
        output = capsys.readouterr().out
        assert "|V(G)|" in output
        assert "Uni" in output

    def test_stats_missing_file_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["stats", str(tmp_path / "missing.json")])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestBuildIndexAndQueries:
    def test_build_index_writes_file(self, index_file):
        payload = json.loads(index_file.read_text())
        assert payload["precomputed"]["max_radius"] == 2

    def test_topl_with_prebuilt_index(self, graph_file, index_file, capsys):
        exit_code = main(
            [
                "topl",
                str(graph_file),
                "--index",
                str(index_file),
                "--k",
                "3",
                "--radius",
                "2",
                "--theta",
                "0.2",
                "--top-l",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "top-L most influential communities" in output
        assert "query keywords:" in output

    def test_topl_with_explicit_keywords(self, graph_file, index_file, capsys):
        exit_code = main(
            [
                "topl",
                str(graph_file),
                "--index",
                str(index_file),
                "--keywords",
                "movies,books",
                "--k",
                "3",
            ]
        )
        assert exit_code == 0
        assert "books, movies" in capsys.readouterr().out

    def test_topl_invalid_parameters_fail_cleanly(self, graph_file, index_file, capsys):
        exit_code = main(
            [
                "topl",
                str(graph_file),
                "--index",
                str(index_file),
                "--keywords",
                "movies",
                "--k",
                "1",
            ]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_dtopl(self, graph_file, index_file, capsys):
        exit_code = main(
            [
                "dtopl",
                str(graph_file),
                "--index",
                str(index_file),
                "--k",
                "3",
                "--top-l",
                "2",
                "--candidate-factor",
                "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "diversified top-L communities" in output
        assert "diversity score" in output

    def test_sweep(self, graph_file, index_file, capsys):
        exit_code = main(
            [
                "sweep",
                str(graph_file),
                "--index",
                str(index_file),
                "--parameter",
                "theta",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "sweep over theta" in output
        assert "wall_clock_s" in output


class TestRoundTripThroughLibrary:
    def test_cli_graph_loadable_by_library(self, graph_file):
        from repro.graph.io import load_graph_json

        graph = load_graph_json(graph_file)
        assert graph.num_vertices() > 0
        assert graph.is_connected()

    def test_cli_accepts_library_written_graph(self, tmp_path, triangle_graph, capsys):
        path = tmp_path / "triangle.json"
        save_graph_json(triangle_graph, path)
        assert main(["stats", str(path)]) == 0
        assert "triangle" in capsys.readouterr().out
