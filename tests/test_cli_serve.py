"""CLI tests for the `repro serve` / `repro batch` subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph.datasets import uni
from repro.graph.io import save_graph_json


@pytest.fixture(scope="module")
def graph_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-cli") / "graph.json"
    save_graph_json(uni(num_vertices=120, rng=5), path)
    return str(path)


def test_serve_prints_throughput(graph_path, capsys):
    exit_code = main(
        ["serve", graph_path, "--queries", "6", "--k", "3", "--top-l", "3", "--seed", "7"]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "batch serving throughput" in captured
    assert "result_cache" in captured


def test_batch_alias_and_repeat_hits_cache(graph_path, capsys, tmp_path):
    out_path = tmp_path / "report.json"
    exit_code = main(
        [
            "batch",
            graph_path,
            "--queries",
            "6",
            "--k",
            "3",
            "--top-l",
            "3",
            "--seed",
            "7",
            "--repeat",
            "2",
            "--out",
            str(out_path),
        ]
    )
    assert exit_code == 0
    report = json.loads(out_path.read_text())
    assert report["batch_size"] == 6
    assert len(report["rounds"]) == 2
    # The second round answers the identical batch from the result cache.
    assert report["rounds"][1]["cache_hits"] == 6
    assert report["rounds"][1]["executed"] == 0
    assert report["caches"]["result_cache"]["hits"] >= 6


def test_serve_no_cache_executes_every_round(graph_path, capsys):
    exit_code = main(
        [
            "serve",
            graph_path,
            "--queries",
            "4",
            "--k",
            "3",
            "--top-l",
            "3",
            "--seed",
            "7",
            "--repeat",
            "2",
            "--no-cache",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "0 hits / 0 lookups" in captured


def test_serve_parallel_workers(graph_path, capsys):
    exit_code = main(
        [
            "serve",
            graph_path,
            "--queries",
            "4",
            "--k",
            "3",
            "--top-l",
            "3",
            "--seed",
            "7",
            "--workers",
            "2",
            "--no-cache",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "fork" in captured or "spawn" in captured
