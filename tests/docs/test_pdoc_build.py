"""API-reference smoke: ``python -m pdoc repro`` must build warning-free.

pdoc imports every module and parses every docstring; a module that fails
to import, a broken cross-reference, or malformed markup surfaces as a
warning on stderr.  The CI ``docs`` job runs this as its gate (and
publishes the HTML as an artifact); locally the test skips when the
``docs`` extra is not installed (``pip install -e ".[docs]"``).
"""

from __future__ import annotations

import subprocess
import sys

import pytest


def test_pdoc_builds_warning_free(tmp_path):
    pytest.importorskip("pdoc")
    process = subprocess.run(
        [sys.executable, "-m", "pdoc", "repro", "-o", str(tmp_path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert process.returncode == 0, process.stderr
    warnings = [
        line
        for line in process.stderr.splitlines()
        if "Warn" in line or "Error" in line
    ]
    assert not warnings, "\n".join(warnings)
    assert (tmp_path / "repro.html").exists() or (tmp_path / "index.html").exists()


def test_every_public_module_imports():
    """The importability half of the docs gate, runnable without pdoc."""
    import importlib
    import pkgutil

    import repro

    failures = []
    for module in pkgutil.walk_packages(repro.__path__, "repro."):
        try:
            importlib.import_module(module.name)
        except Exception as exc:  # pragma: no cover - only fires on breakage
            failures.append((module.name, repr(exc)))
    assert not failures, failures
