"""Unit tests for the serving-layer cache primitives."""

from __future__ import annotations

import pytest

from repro.exceptions import ServingError
from repro.pruning.stats import PruningConfig
from repro.query.params import make_dtopl_query, make_topl_query
from repro.serve.cache import (
    CacheStatistics,
    LRUCache,
    maybe_cache,
    propagation_cache_key,
    query_cache_key,
)


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 0

    def test_miss_returns_default_and_counts(self):
        cache = LRUCache(4)
        assert cache.get("absent") is None
        assert cache.get("absent", default=7) == 7
        assert cache.statistics.misses == 2
        assert cache.statistics.hit_rate == 0.0

    def test_eviction_respects_capacity(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.statistics.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)
        # "b" was least recently used, not "a".
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_existing_without_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.statistics.evictions == 0

    def test_clear_keeps_statistics(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.statistics.hits == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ServingError):
            LRUCache(0)

    def test_maybe_cache(self):
        assert maybe_cache(0) is None
        assert isinstance(maybe_cache(3), LRUCache)


class TestCacheStatistics:
    def test_merge_and_as_dict(self):
        first = CacheStatistics(hits=2, misses=1, evictions=1)
        second = CacheStatistics(hits=1, misses=1)
        first.merge(second)
        payload = first.as_dict()
        assert payload["hits"] == 3
        assert payload["lookups"] == 5
        assert payload["hit_rate"] == pytest.approx(0.6)


class TestCacheKeys:
    def test_topl_and_dtopl_do_not_collide(self):
        pruning = PruningConfig.all_enabled()
        topl = make_topl_query({"movies"}, k=3, top_l=3)
        dtopl = make_dtopl_query({"movies"}, k=3, top_l=3)
        assert query_cache_key(topl, pruning) != query_cache_key(dtopl, pruning)

    def test_pruning_config_part_of_key(self):
        query = make_topl_query({"movies"}, k=3)
        assert query_cache_key(query, PruningConfig.all_enabled()) != query_cache_key(
            query, PruningConfig.keyword_only()
        )

    def test_equal_queries_share_key(self):
        pruning = PruningConfig.all_enabled()
        first = make_topl_query({"movies", "books"}, k=3, theta=0.2)
        second = make_topl_query({"books", "movies"}, k=3, theta=0.2)
        assert query_cache_key(first, pruning) == query_cache_key(second, pruning)

    def test_rejects_non_query(self):
        with pytest.raises(ServingError):
            query_cache_key("not a query", PruningConfig.all_enabled())

    def test_propagation_key_normalises_vertex_order(self):
        assert propagation_cache_key([1, 2, 3], 0.2) == propagation_cache_key(
            (3, 2, 1), 0.2
        )
        assert propagation_cache_key([1, 2], 0.2) != propagation_cache_key([1, 2], 0.3)
