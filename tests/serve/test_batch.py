"""Tests for the batch serving engine: caching, worker pools, order stability."""

from __future__ import annotations

import pytest

from repro.exceptions import ServingError
from repro.query.params import DTopLQuery
from repro.query.results import DTopLResult, TopLResult
from repro.serve.batch import BatchQueryEngine, ServingConfig
from repro.workloads.queries import QueryWorkload


def _fingerprint(result):
    """Stable identity of a query result: vertex sets + scores, in order."""
    return tuple(
        (community.vertices, round(community.score, 9)) for community in result
    )


@pytest.fixture(scope="module")
def serve_workload(small_world_graph):
    """A module-private workload so the shared session RNG is left untouched."""
    return QueryWorkload(small_world_graph, rng=31)


@pytest.fixture(scope="module")
def mixed_queries(serve_workload):
    """A deterministic mixed batch: 6 TopL + 2 DTopL queries."""
    topl = serve_workload.topl_batch(6, num_keywords=3, k=3, top_l=3)
    dtopl = serve_workload.dtopl_batch(2, num_keywords=3, k=3, top_l=3)
    return [topl[0], dtopl[0], *topl[1:4], dtopl[1], *topl[4:]]


class TestServingConfig:
    def test_defaults_valid(self):
        config = ServingConfig()
        assert config.workers == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"result_cache_capacity": -1},
            {"propagation_cache_capacity": -1},
            {"start_method": "thread"},
            {"chunk_size": 0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ServingError):
            ServingConfig(**kwargs)


class TestSequentialServing:
    def test_results_match_direct_engine_calls(self, small_engine, mixed_queries):
        serving = small_engine.serve()
        batch = serving.run(mixed_queries)
        assert len(batch) == len(mixed_queries)
        for query, result in zip(mixed_queries, batch):
            if isinstance(query, DTopLQuery):
                assert isinstance(result, DTopLResult)
                direct = small_engine.dtopl(query)
            else:
                assert isinstance(result, TopLResult)
                direct = small_engine.topl(query)
            assert _fingerprint(result) == _fingerprint(direct)

    def test_cache_hit_returns_identical_result(self, small_engine, mixed_queries):
        serving = small_engine.serve()
        query = mixed_queries[0]
        cold = serving.answer(query)
        warm = serving.answer(query)
        assert warm is cold
        statistics = serving.cache_statistics()["result_cache"]
        assert statistics["hits"] == 1
        assert statistics["misses"] == 1

    def test_batch_second_round_served_from_cache(self, small_engine, mixed_queries):
        serving = small_engine.serve()
        first = serving.run(mixed_queries)
        second = serving.run(mixed_queries)
        assert first.statistics.executed == len(mixed_queries)
        assert second.statistics.executed == 0
        assert second.statistics.result_cache_hits == len(mixed_queries)
        for a, b in zip(first, second):
            assert _fingerprint(a) == _fingerprint(b)

    def test_result_cache_eviction_respects_capacity(self, small_engine, mixed_queries):
        serving = small_engine.serve(result_cache_capacity=1)
        first, second = mixed_queries[0], mixed_queries[2]
        serving.answer(first)
        serving.answer(second)  # evicts `first`
        serving.answer(first)   # must be recomputed
        assert serving.result_cache.statistics.evictions >= 1
        assert serving.result_cache.statistics.hits == 0

    def test_duplicate_queries_deduplicated_within_batch(self, small_engine, mixed_queries):
        query = mixed_queries[0]
        batch = small_engine.serve().run([query, query, query])
        assert batch.statistics.executed == 1
        assert batch.statistics.deduplicated == 2
        assert _fingerprint(batch[0]) == _fingerprint(batch[2])

    def test_cache_disabled_executes_everything(self, small_engine, mixed_queries):
        serving = small_engine.serve(
            result_cache_capacity=0, propagation_cache_capacity=0
        )
        query = mixed_queries[0]
        batch = serving.run([query, query])
        assert batch.statistics.executed == 2
        assert batch.statistics.result_cache_hits == 0
        assert serving.result_cache is None
        assert serving.propagation_cache is None

    def test_propagation_cache_shared_across_queries(
        self, small_engine, small_world_graph
    ):
        serving = small_engine.serve()
        workload = QueryWorkload(small_world_graph, rng=31)
        workload.topl_query(num_keywords=3, k=3, top_l=3)  # skip a no-hit sample
        query = workload.topl_query(num_keywords=3, k=3, top_l=3)
        widened = query.with_overrides(top_l=5)
        cold = serving.answer(query)
        assert cold.statistics.communities_scored > 0
        result = serving.answer(widened)
        # The widened query revisits the same candidate communities, so the
        # shared propagation cache must answer some of its scorings.
        assert result.statistics.propagation_cache_hits > 0

    def test_rejects_non_query_input(self, small_engine):
        with pytest.raises(ServingError):
            small_engine.serve().run(["nonsense"])

    def test_rejects_invalid_worker_override(self, small_engine, mixed_queries):
        with pytest.raises(ServingError):
            small_engine.serve().run(mixed_queries, workers=0)


class TestParallelServing:
    def test_fork_results_equal_sequential_and_order_stable(
        self, small_engine, mixed_queries
    ):
        sequential = small_engine.serve(result_cache_capacity=0).run(mixed_queries)
        parallel = small_engine.serve(result_cache_capacity=0).run(
            mixed_queries, workers=2
        )
        assert parallel.statistics.mode in ("fork", "spawn", "forkserver")
        assert parallel.statistics.executed == len(mixed_queries)
        assert [_fingerprint(r) for r in parallel] == [
            _fingerprint(r) for r in sequential
        ]

    def test_parallel_fills_result_cache(self, small_engine, mixed_queries):
        serving = small_engine.serve()
        first = serving.run(mixed_queries, workers=2)
        second = serving.run(mixed_queries)
        assert first.statistics.executed > 0
        assert second.statistics.result_cache_hits == len(mixed_queries)

    def test_spawn_rebuild_strategy_matches(self, small_engine, mixed_queries):
        queries = mixed_queries[:3]
        sequential = small_engine.serve(result_cache_capacity=0).run(queries)
        spawned = small_engine.serve(
            result_cache_capacity=0, start_method="spawn"
        ).run(queries, workers=2)
        assert spawned.statistics.mode == "spawn"
        assert [_fingerprint(r) for r in spawned] == [
            _fingerprint(r) for r in sequential
        ]


class TestEngineWrappers:
    def test_topl_many(self, small_engine, serve_workload):
        queries = serve_workload.topl_batch(3, num_keywords=3, k=3, top_l=3)
        results = small_engine.topl_many(queries)
        assert len(results) == 3
        for query, result in zip(queries, results):
            assert _fingerprint(result) == _fingerprint(small_engine.topl(query))

    def test_dtopl_many(self, small_engine, serve_workload):
        queries = serve_workload.dtopl_batch(2, num_keywords=3, k=3, top_l=3)
        results = small_engine.dtopl_many(queries)
        assert len(results) == 2
        for query, result in zip(queries, results):
            assert _fingerprint(result) == _fingerprint(small_engine.dtopl(query))

    def test_serve_builds_configured_engine(self, small_engine):
        serving = small_engine.serve(workers=2, result_cache_capacity=7)
        assert isinstance(serving, BatchQueryEngine)
        assert serving.config.workers == 2
        assert serving.result_cache.capacity == 7
