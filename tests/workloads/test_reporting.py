"""Unit tests for report formatting."""

import pytest

from repro.workloads.reporting import (
    format_series,
    format_table,
    speedup,
    summarize_comparison,
)


class TestFormatTable:
    def test_alignment_and_headers(self):
        rows = [{"dataset": "uni", "time": 1.5}, {"dataset": "zipf", "time": 10.25}]
        table = format_table(rows, title="Figure X")
        lines = table.splitlines()
        assert lines[0] == "Figure X"
        assert "dataset" in lines[1]
        assert "time" in lines[1]
        assert "uni" in lines[3]
        assert "zipf" in lines[4]

    def test_missing_cells_render_empty(self):
        table = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in table

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="T").startswith("T")

    def test_column_selection(self):
        table = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in table.splitlines()[0]


class TestFormatSeries:
    def test_series_rendering(self):
        series = format_series("Uni", [(0.1, 2.5), (0.2, 3.0)])
        assert series.startswith("Uni: ")
        assert "0.1=2.5" in series


class TestSpeedupAndSummary:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) == float("inf")
        assert speedup(0.0, 0.0) == 1.0

    def test_summarize_comparison(self):
        rows = [
            {"ours": 1.0, "baseline": 10.0},
            {"ours": 2.0, "baseline": 4.0},
            {"ours": 5.0, "baseline": 1.0},
        ]
        summary = summarize_comparison(rows, "ours", "baseline")
        assert summary["rows"] == 3
        assert summary["method_wins"] == 2
        assert summary["baseline_wins"] == 1
        assert summary["max_speedup"] == pytest.approx(10.0)
        assert summary["min_speedup"] == pytest.approx(0.2)
