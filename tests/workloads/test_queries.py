"""Unit tests for query workload generation."""

import pytest

from repro.exceptions import DatasetError
from repro.graph.social_network import SocialNetwork
from repro.workloads.queries import QueryWorkload


class TestQueryWorkload:
    def test_sample_keywords_from_domain(self, small_world_graph):
        workload = QueryWorkload(small_world_graph, rng=1)
        keywords = workload.sample_keywords(5)
        assert len(keywords) == 5
        assert keywords <= small_world_graph.keyword_domain()

    def test_sample_capped_at_domain_size(self, triangle_graph):
        workload = QueryWorkload(triangle_graph, rng=1)
        keywords = workload.sample_keywords(50)
        assert keywords == triangle_graph.keyword_domain()

    def test_graph_without_keywords_rejected(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.5)
        with pytest.raises(DatasetError):
            QueryWorkload(graph)

    def test_topl_query_parameters_passed_through(self, small_world_graph):
        workload = QueryWorkload(small_world_graph, rng=2)
        query = workload.topl_query(num_keywords=3, k=3, radius=1, theta=0.3, top_l=7)
        assert len(query.keywords) == 3
        assert query.k == 3
        assert query.radius == 1
        assert query.theta == pytest.approx(0.3)
        assert query.top_l == 7

    def test_dtopl_query_candidate_factor(self, small_world_graph):
        workload = QueryWorkload(small_world_graph, rng=2)
        query = workload.dtopl_query(num_keywords=2, top_l=3, candidate_factor=4)
        assert query.num_candidates == 12

    def test_batches_have_requested_size(self, small_world_graph):
        workload = QueryWorkload(small_world_graph, rng=3)
        assert len(workload.topl_batch(4, num_keywords=2)) == 4
        assert len(workload.dtopl_batch(3, num_keywords=2)) == 3

    def test_reproducible_given_seed(self, small_world_graph):
        first = QueryWorkload(small_world_graph, rng=9).topl_batch(3, num_keywords=4)
        second = QueryWorkload(small_world_graph, rng=9).topl_batch(3, num_keywords=4)
        assert [q.keywords for q in first] == [q.keywords for q in second]

    def test_sample_centers_respects_min_degree(self, small_world_graph):
        workload = QueryWorkload(small_world_graph, rng=4)
        centers = workload.sample_centers(10, min_degree=7)
        assert len(centers) <= 10
        assert all(small_world_graph.degree(v) >= 7 for v in centers)

    def test_sample_centers_empty_when_unsatisfiable(self, triangle_graph):
        workload = QueryWorkload(triangle_graph, rng=4)
        assert workload.sample_centers(5, min_degree=100) == []
