"""Unit tests for the experiment runner."""

import pytest

from repro.core.config import EngineConfig
from repro.pruning.stats import PruningConfig
from repro.workloads.runner import ExperimentRunner
from repro.workloads.sweeps import PAPER_PARAMETER_GRID


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        grid=PAPER_PARAMETER_GRID.scaled(0.005),
        config=EngineConfig(max_radius=2, thresholds=(0.1, 0.2, 0.3)),
        rng_seed=7,
    )


@pytest.fixture(scope="module")
def small_uni_graph(runner):
    return runner.synthetic_graph("uniform", num_vertices=120)


class TestExperimentRunner:
    def test_engine_cached_per_graph(self, runner, small_uni_graph):
        first = runner.engine_for(small_uni_graph)
        second = runner.engine_for(small_uni_graph)
        assert first is second

    def test_synthetic_graph_uses_grid_defaults(self, runner, small_uni_graph):
        defaults = runner.grid.defaults()
        assert small_uni_graph.num_vertices() <= 120
        sample_vertex = next(iter(small_uni_graph.vertices()))
        assert len(small_uni_graph.keywords(sample_vertex)) == defaults["keywords_per_vertex"]

    def test_measure_topl_metrics(self, runner, small_uni_graph):
        workload = runner.workload_for(small_uni_graph)
        query = workload.topl_query(num_keywords=5, k=3, radius=2, theta=0.2, top_l=3)
        point = runner.measure_topl(small_uni_graph, query)
        row = point.row()
        assert row["dataset"] == "Uni"
        assert row["wall_clock_s"] > 0
        assert row["communities"] >= 0
        assert row["pruning"] == PruningConfig.all_enabled().label()

    def test_measure_dtopl_methods(self, runner, small_uni_graph):
        workload = runner.workload_for(small_uni_graph)
        query = workload.dtopl_query(num_keywords=5, k=3, radius=2, theta=0.2, top_l=2, candidate_factor=2)
        for method in ("greedy_wp", "greedy_wop"):
            point = runner.measure_dtopl(small_uni_graph, query, method=method)
            assert point.metrics["wall_clock_s"] > 0
            assert point.settings["method"] == method

    def test_measure_dtopl_unknown_method_rejected(self, runner, small_uni_graph):
        workload = runner.workload_for(small_uni_graph)
        query = workload.dtopl_query(num_keywords=3, top_l=2)
        with pytest.raises(KeyError):
            runner.measure_dtopl(small_uni_graph, query, method="magic")
