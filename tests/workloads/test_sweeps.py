"""Unit tests for the Table III parameter grid."""

import pytest

from repro.workloads.sweeps import PAPER_PARAMETER_GRID, ParameterGrid, SweepPoint


class TestParameterGrid:
    def test_paper_values(self):
        grid = PAPER_PARAMETER_GRID
        assert grid.theta_values == (0.1, 0.2, 0.3)
        assert grid.query_keyword_sizes == (2, 3, 5, 8, 10)
        assert grid.truss_k_values == (3, 4, 5)
        assert grid.radius_values == (1, 2, 3)
        assert grid.result_sizes == (2, 3, 5, 8, 10)
        assert grid.keyword_domain_sizes == (10, 20, 50, 80)
        assert grid.graph_sizes[-1] == 1_000_000
        assert grid.candidate_factors == (2, 3, 5, 8, 10)

    def test_defaults_match_table_iii_bold_entries(self):
        defaults = PAPER_PARAMETER_GRID.defaults()
        assert defaults["theta"] == 0.2
        assert defaults["num_query_keywords"] == 5
        assert defaults["k"] == 4
        assert defaults["radius"] == 2
        assert defaults["top_l"] == 5
        assert defaults["keywords_per_vertex"] == 3
        assert defaults["keyword_domain"] == 50
        assert defaults["graph_size"] == 25_000
        assert defaults["candidate_factor"] == 3

    def test_sweep_varies_only_one_parameter(self):
        sweep = PAPER_PARAMETER_GRID.sweep("theta")
        assert [point["theta"] for point in sweep] == [0.1, 0.2, 0.3]
        for point in sweep:
            assert point["k"] == 4
            assert point["swept_parameter"] == "theta"

    def test_every_parameter_sweepable(self):
        for name in (
            "theta",
            "num_query_keywords",
            "k",
            "radius",
            "top_l",
            "keywords_per_vertex",
            "keyword_domain",
            "graph_size",
            "candidate_factor",
        ):
            sweep = PAPER_PARAMETER_GRID.sweep(name)
            assert len(sweep) >= 3

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError):
            PAPER_PARAMETER_GRID.sweep("bogus")

    def test_scaled_grid(self):
        scaled = PAPER_PARAMETER_GRID.scaled(0.01)
        assert scaled.graph_sizes[0] == 100
        assert scaled.graph_sizes[-1] == 10_000
        assert scaled.default_graph_size == 250
        # Non-size parameters are untouched.
        assert scaled.theta_values == PAPER_PARAMETER_GRID.theta_values

    def test_scaled_grid_floor(self):
        scaled = ParameterGrid().scaled(0.000001)
        assert all(size >= 100 for size in scaled.graph_sizes)


class TestSweepPoint:
    def test_row_merges_settings_and_metrics(self):
        point = SweepPoint(settings={"theta": 0.2}, metrics={"wall_clock_s": 1.5})
        row = point.row()
        assert row == {"theta": 0.2, "wall_clock_s": 1.5}
