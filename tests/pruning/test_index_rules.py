"""Unit tests for the index-level pruning rules (Lemmas 5-7)."""

from repro.keywords.bitvector import BitVector
from repro.pruning.index_rules import (
    entry_priority,
    index_keyword_prune,
    index_score_prune,
    index_support_prune,
)


class TestIndexKeywordPrune:
    def test_disjoint_signatures_pruned(self):
        entry = BitVector.from_keywords({"movies"})
        query = BitVector.from_keywords({"movies"})
        assert not index_keyword_prune(entry, query)
        assert index_keyword_prune(BitVector.empty(), query)

    def test_superset_signature_kept(self):
        entry = BitVector.from_keywords({"movies", "books", "sports"})
        query = BitVector.from_keywords({"sports"})
        assert not index_keyword_prune(entry, query)


class TestIndexSupportPrune:
    def test_comparison_against_k_minus_two(self):
        assert index_support_prune(entry_support_bound=1, k=4)
        assert not index_support_prune(entry_support_bound=2, k=4)
        assert not index_support_prune(entry_support_bound=0, k=2)


class TestIndexScorePrune:
    def test_prunes_when_bound_not_better(self):
        bounds = [(0.1, 30.0), (0.3, 10.0)]
        assert index_score_prune(bounds, theta=0.3, current_lth_score=10.0)
        assert index_score_prune(bounds, theta=0.3, current_lth_score=15.0)
        assert not index_score_prune(bounds, theta=0.3, current_lth_score=9.0)

    def test_uses_applicable_threshold(self):
        bounds = [(0.1, 30.0), (0.3, 10.0)]
        # theta = 0.2 falls back to the 0.1 bound (30), which beats 20.
        assert not index_score_prune(bounds, theta=0.2, current_lth_score=20.0)

    def test_never_prunes_before_l_results(self):
        bounds = [(0.1, 1.0)]
        assert not index_score_prune(bounds, theta=0.1, current_lth_score=float("-inf"))


class TestEntryPriority:
    def test_priority_is_applicable_bound(self):
        bounds = [(0.1, 30.0), (0.3, 10.0)]
        assert entry_priority(bounds, 0.1) == 30.0
        assert entry_priority(bounds, 0.3) == 10.0
        assert entry_priority(bounds, 0.05) == float("inf")
