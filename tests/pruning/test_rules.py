"""Unit tests for the community-level pruning rules (Lemmas 1-4)."""

from repro.graph.subgraph import SubgraphView
from repro.keywords.bitvector import BitVector
from repro.pruning.rules import (
    center_has_query_keyword,
    edge_support_prune,
    has_any_query_keyword,
    keyword_prune_by_bitvector,
    radius_prune,
    radius_violations,
    score_prune,
    select_score_bound,
    support_prune,
)


class TestKeywordPruning:
    def test_center_with_keyword_not_pruned(self, triangle_graph):
        assert center_has_query_keyword(triangle_graph, "a", frozenset({"movies"}))
        assert not center_has_query_keyword(triangle_graph, "d", frozenset({"movies"}))

    def test_bitvector_pruning_safe(self):
        candidate = BitVector.from_keywords({"movies", "books"})
        query = BitVector.from_keywords({"books"})
        assert not keyword_prune_by_bitvector(candidate, query)
        empty_candidate = BitVector.empty()
        assert keyword_prune_by_bitvector(empty_candidate, query)

    def test_exact_keyword_check(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c"})
        assert has_any_query_keyword(view, frozenset({"books"}))
        assert not has_any_query_keyword(view, frozenset({"gaming"}))


class TestSupportPruning:
    def test_threshold(self):
        assert support_prune(support_upper_bound=1, k=4)  # needs 2
        assert not support_prune(support_upper_bound=2, k=4)
        assert not support_prune(support_upper_bound=0, k=2)  # k=2 needs 0

    def test_edge_level(self):
        assert edge_support_prune([0, 1, 1], k=4)
        assert not edge_support_prune([0, 2, 1], k=4)
        # No edges at all: nothing can satisfy the truss condition, so pruning
        # is (vacuously) safe.
        assert edge_support_prune([], k=4)


class TestRadiusPruning:
    def test_violations(self, two_cliques_bridge):
        view = SubgraphView(two_cliques_bridge, set(range(10)))
        far = radius_violations(view, 0, radius=2)
        # From vertex 0 inside the full view: clique A and bridge vertex 4 are
        # within 2 hops; 5 and clique B are farther.
        assert far == frozenset({5, 6, 7, 8, 9})

    def test_no_violations_inside_clique(self, two_cliques_bridge):
        view = SubgraphView(two_cliques_bridge, set(range(4)))
        assert radius_violations(view, 0, radius=1) == frozenset()

    def test_radius_prune_only_when_center_isolated(self, two_cliques_bridge):
        whole = SubgraphView(two_cliques_bridge, set(range(10)))
        assert not radius_prune(whole, 0, radius=1)
        isolated = SubgraphView(two_cliques_bridge, {0, 9})
        assert radius_prune(isolated, 0, radius=2)


class TestScorePruning:
    def test_prunes_only_when_bound_cannot_beat_lth(self):
        assert score_prune(score_upper_bound=10.0, current_lth_score=10.0)
        assert score_prune(score_upper_bound=9.0, current_lth_score=10.0)
        assert not score_prune(score_upper_bound=11.0, current_lth_score=10.0)

    def test_never_prunes_before_l_results(self):
        assert not score_prune(score_upper_bound=0.5, current_lth_score=float("-inf"))

    def test_select_score_bound(self):
        bounds = [(0.1, 40.0), (0.2, 25.0), (0.3, 12.0)]
        assert select_score_bound(bounds, 0.1) == 40.0
        assert select_score_bound(bounds, 0.25) == 25.0
        assert select_score_bound(bounds, 0.3) == 12.0
        assert select_score_bound(bounds, 0.9) == 12.0
        assert select_score_bound(bounds, 0.05) == float("inf")
        assert select_score_bound([], 0.2) == float("inf")
