"""Unit tests for pruning configuration and counters."""

from repro.pruning.stats import ABLATION_CONFIGS, PruningConfig, PruningCounters


class TestPruningConfig:
    def test_factories(self):
        assert PruningConfig.all_enabled() == PruningConfig(True, True, True)
        assert PruningConfig.keyword_only() == PruningConfig(True, False, False)
        assert PruningConfig.keyword_and_support() == PruningConfig(True, True, False)
        assert PruningConfig.none_enabled() == PruningConfig(False, False, False)

    def test_labels(self):
        assert PruningConfig.all_enabled().label() == "keyword + support + score"
        assert PruningConfig.keyword_only().label() == "keyword"
        assert PruningConfig.none_enabled().label() == "no pruning"

    def test_ablation_configs_order(self):
        assert ABLATION_CONFIGS[0] == PruningConfig.keyword_only()
        assert ABLATION_CONFIGS[1] == PruningConfig.keyword_and_support()
        assert ABLATION_CONFIGS[2] == PruningConfig.all_enabled()

    def test_config_is_hashable_and_frozen(self):
        assert len({PruningConfig.all_enabled(), PruningConfig.all_enabled()}) == 1


class TestPruningCounters:
    def test_totals(self):
        counters = PruningCounters(keyword=2, support=1, radius=3, score=4, index_keyword=5)
        assert counters.community_level == 10
        assert counters.index_level == 5
        assert counters.total == 15

    def test_merge(self):
        first = PruningCounters(keyword=1, index_score=2)
        second = PruningCounters(keyword=3, diversity=1)
        first.merge(second)
        assert first.keyword == 4
        assert first.index_score == 2
        assert first.diversity == 1

    def test_as_dict_keys(self):
        payload = PruningCounters().as_dict()
        assert payload["total"] == 0
        assert set(payload) >= {"keyword", "support", "radius", "score", "total"}
