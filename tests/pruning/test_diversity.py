"""Unit tests for the diversity score and its pruning helpers."""

import pytest

from repro.influence.propagation import InfluencedCommunity
from repro.pruning.diversity import (
    apply_to_coverage,
    coverage_map,
    diversity_prune,
    diversity_score,
    is_monotone_increase,
    marginal_gain,
)


def make_influenced(seeds, cpp):
    return InfluencedCommunity(seed_vertices=frozenset(seeds), cpp=dict(cpp), threshold=0.1)


@pytest.fixture
def three_communities():
    g1 = make_influenced({1}, {1: 1.0, 2: 0.5, 3: 0.4})
    g2 = make_influenced({4}, {4: 1.0, 2: 0.8, 5: 0.3})
    g3 = make_influenced({6}, {6: 1.0, 3: 0.1})
    return g1, g2, g3


class TestDiversityScore:
    def test_single_community_equals_its_score(self, three_communities):
        g1, _, _ = three_communities
        assert diversity_score([g1]) == pytest.approx(g1.score)

    def test_overlap_counted_once_at_max(self, three_communities):
        g1, g2, _ = three_communities
        # vertex 2 is influenced by both; only the max (0.8) counts.
        expected = 1.0 + 0.8 + 0.4 + 1.0 + 0.3
        assert diversity_score([g1, g2]) == pytest.approx(expected)

    def test_empty_set(self):
        assert diversity_score([]) == 0.0

    def test_monotonicity(self, three_communities):
        g1, g2, g3 = three_communities
        d1 = diversity_score([g1])
        d2 = diversity_score([g1, g2])
        d3 = diversity_score([g1, g2, g3])
        assert is_monotone_increase(d1, d2)
        assert is_monotone_increase(d2, d3)

    def test_submodularity(self, three_communities):
        """Gain of adding g3 to a subset >= gain of adding it to a superset."""
        g1, g2, g3 = three_communities
        gain_small = diversity_score([g1, g3]) - diversity_score([g1])
        gain_large = diversity_score([g1, g2, g3]) - diversity_score([g1, g2])
        assert gain_small >= gain_large - 1e-9


class TestCoverageAndGain:
    def test_coverage_map(self, three_communities):
        g1, g2, _ = three_communities
        coverage = coverage_map([g1, g2])
        assert coverage[2] == pytest.approx(0.8)
        assert coverage[1] == pytest.approx(1.0)

    def test_marginal_gain_matches_difference(self, three_communities):
        g1, g2, g3 = three_communities
        coverage = coverage_map([g1, g2])
        expected = diversity_score([g1, g2, g3]) - diversity_score([g1, g2])
        assert marginal_gain(g3, coverage) == pytest.approx(expected)

    def test_marginal_gain_against_empty(self, three_communities):
        g1, _, _ = three_communities
        assert marginal_gain(g1, {}) == pytest.approx(g1.score)

    def test_apply_to_coverage_mutates(self, three_communities):
        g1, g2, _ = three_communities
        coverage = {}
        apply_to_coverage(g1, coverage)
        apply_to_coverage(g2, coverage)
        assert coverage == coverage_map([g1, g2])


class TestDiversityPrune:
    def test_prune_when_stale_bound_below_fresh_gain(self):
        assert diversity_prune(stale_gain_bound=0.5, best_fresh_gain=0.7)
        assert not diversity_prune(stale_gain_bound=0.9, best_fresh_gain=0.7)
