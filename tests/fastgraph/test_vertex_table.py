"""VertexTable interning: stability, lookups, and edge cases."""

from __future__ import annotations

import pytest

from repro.exceptions import VertexNotFoundError
from repro.fastgraph import VertexTable


def test_interning_assigns_dense_indices_in_first_seen_order():
    table = VertexTable()
    assert table.intern("alice") == 0
    assert table.intern("bob") == 1
    assert table.intern("alice") == 0  # re-interning is a lookup
    assert len(table) == 2
    assert table.ids() == ["alice", "bob"]


def test_index_of_and_id_of_are_inverse():
    ids = ["u", ("tuple", 3), 42, "v w"]  # mixed hashables, spaces included
    table = VertexTable(ids)
    for vertex in ids:
        assert table.id_of(table.index_of(vertex)) == vertex
    assert list(table) == ids


def test_index_of_unknown_vertex_raises():
    table = VertexTable(["a"])
    with pytest.raises(VertexNotFoundError):
        table.index_of("b")
    assert "b" not in table
    assert "a" in table


def test_interning_is_stable_across_constructions():
    ids = [f"user-{i}" for i in range(20)]
    first = VertexTable(ids)
    second = VertexTable(ids)
    assert first == second
    assert [first.index_of(v) for v in ids] == [second.index_of(v) for v in ids]


def test_table_is_unhashable():
    with pytest.raises(TypeError):
        hash(VertexTable(["a"]))
