"""CSRGraph freeze/thaw: shape, probabilities, round-trips, numpy bridge."""

from __future__ import annotations

import pytest

from repro.fastgraph import CSRGraph
from repro.graph.generators import erdos_renyi_graph
from repro.graph.io import graph_to_dict
from repro.graph.social_network import SocialNetwork


def small_graph() -> SocialNetwork:
    graph = SocialNetwork(name="frozen-test")
    graph.add_vertex("a", {"movies"})
    graph.add_vertex("b", {"books", "movies"})
    graph.add_edge("a", "b", 0.25, 0.75)
    graph.add_edge("b", "c", 0.5)
    graph.add_edge("a", "c", 0.1, 0.9)
    graph.add_vertex("lonely", {"travel"})
    return graph


def assert_same_network(left: SocialNetwork, right: SocialNetwork) -> None:
    """Semantic equality: vertices, keywords, edges, directional probabilities."""
    assert left.name == right.name
    assert set(left.vertices()) == set(right.vertices())
    for vertex in left.vertices():
        assert left.keywords(vertex) == right.keywords(vertex)
    left_edges = {frozenset(edge) for edge in left.edges()}
    right_edges = {frozenset(edge) for edge in right.edges()}
    assert left_edges == right_edges
    for u, v in left.edges():
        assert left.probability(u, v) == right.probability(u, v)
        assert left.probability(v, u) == right.probability(v, u)


def test_freeze_shape_and_lookups():
    graph = small_graph()
    csr = graph.freeze()
    assert isinstance(csr, CSRGraph)
    assert csr.num_vertices == 4
    assert csr.num_edges == 3
    assert csr.num_arcs == 6
    a = csr.table.index_of("a")
    assert csr.degree(a) == 2
    assert csr.degree(csr.table.index_of("lonely")) == 0
    # Arc probabilities are the directional activation probabilities.
    b = csr.table.index_of("b")
    for position in range(csr.indptr[a], csr.indptr[a + 1]):
        if csr.indices[position] == b:
            assert csr.prob_out[position] == 0.25
            assert csr.prob_in[position] == 0.75


def test_keywords_carried_per_dense_index():
    csr = small_graph().freeze()
    assert csr.keywords[csr.table.index_of("b")] == frozenset({"books", "movies"})
    assert csr.keywords[csr.table.index_of("lonely")] == frozenset({"travel"})


def test_thaw_round_trip_small():
    graph = small_graph()
    assert_same_network(graph, graph.freeze().thaw())


@pytest.mark.parametrize("seed", range(8))
def test_thaw_round_trip_random(seed):
    graph = erdos_renyi_graph(
        14, edge_probability=0.3, rng=seed, weight_range=(0.05, 0.95)
    )
    assert_same_network(graph, graph.freeze().thaw())


def test_freeze_is_deterministic():
    graph = small_graph()
    first, second = graph.freeze(), graph.freeze()
    assert first.table == second.table
    assert first.indptr == second.indptr
    assert first.indices == second.indices
    assert first.prob_out == second.prob_out
    assert first.prob_in == second.prob_in


def test_double_round_trip_is_stable():
    graph = small_graph()
    once = graph.freeze().thaw()
    twice = once.freeze().thaw()
    assert_same_network(once, twice)
    assert graph_to_dict(once) == graph_to_dict(twice)


def test_empty_graph_freezes():
    csr = SocialNetwork(name="empty").freeze()
    assert csr.num_vertices == 0
    assert csr.num_edges == 0
    assert_same_network(csr.thaw(), SocialNetwork(name="empty"))


def test_as_numpy_zero_copy():
    numpy = pytest.importorskip("numpy")
    csr = small_graph().freeze()
    views = csr.as_numpy()
    assert views["indptr"].tolist() == csr.indptr.tolist()
    assert views["prob_out"].dtype == numpy.float64
    # Zero-copy: the ndarray shares the array.array buffer.
    assert views["indices"].base is not None
