"""Kernel-level cross-backend equivalence: supports, trussness, propagation.

Every fast kernel must reproduce its reference counterpart *exactly* —
identical ints for supports and trussness, bit-identical floats for
propagation probabilities and influential scores — on seeded random graphs
and on hypothesis-generated ones.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.fastgraph import (
    community_propagation_csr,
    edge_supports_csr,
    freeze,
    truss_decomposition_csr,
)
from repro.fastgraph.kernels import CSRWorkspace, bfs_hop_ball, supports_as_dict
from repro.graph.generators import erdos_renyi_graph, planted_community_graph
from repro.graph.keyword_assignment import assign_keywords
from repro.graph.traversal import bfs_distances
from repro.influence.propagation import community_propagation
from repro.truss.decomposition import truss_decomposition
from repro.truss.support import edge_support

from tests.property.strategies import social_networks


def seeded_graph(seed: int):
    rng = random.Random(seed)
    if seed % 3 == 0:
        graph = planted_community_graph(
            [rng.randint(4, 9) for _ in range(rng.randint(2, 4))],
            intra_probability=0.5,
            inter_probability=0.05,
            rng=seed,
        )
    else:
        graph = erdos_renyi_graph(
            rng.randint(4, 24),
            edge_probability=rng.uniform(0.1, 0.6),
            rng=seed,
            weight_range=(0.05, 0.95),
        )
    assign_keywords(graph, keywords_per_vertex=3, domain_size=20, rng=seed)
    return rng, graph


@pytest.mark.parametrize("seed", range(20))
def test_supports_match_reference(seed):
    _, graph = seeded_graph(seed)
    csr = freeze(graph)
    assert supports_as_dict(csr, edge_supports_csr(csr)) == edge_support(graph)


@pytest.mark.parametrize("seed", range(20))
def test_trussness_matches_reference(seed):
    _, graph = seeded_graph(seed)
    reference = truss_decomposition(graph)
    fast = truss_decomposition_csr(freeze(graph))
    assert fast.edge_trussness == reference.edge_trussness
    assert fast.vertex_trussness == reference.vertex_trussness


@pytest.mark.parametrize("seed", range(20))
def test_truss_backend_switch_on_decomposition(seed):
    _, graph = seeded_graph(seed)
    assert (
        truss_decomposition(graph, backend="fast").edge_trussness
        == truss_decomposition(graph).edge_trussness
    )


@pytest.mark.parametrize("seed", range(20))
def test_bfs_balls_match_reference(seed):
    _, graph = seeded_graph(seed)
    csr = freeze(graph)
    for vertex in list(graph.vertices())[:5]:
        for radius in (1, 2, 3):
            reference = bfs_distances(graph, vertex, max_depth=radius)
            fast = bfs_hop_ball(csr, csr.table.index_of(vertex), radius)
            assert {csr.table.id_of(v): d for v, d in fast.items()} == reference


@pytest.mark.parametrize("seed", range(20))
def test_propagation_bit_identical(seed):
    rng, graph = seeded_graph(seed)
    csr = freeze(graph)
    workspace = CSRWorkspace(csr)
    vertices = list(graph.vertices())
    for theta in (0.0, 0.1, 0.35):
        seeds = frozenset(rng.sample(vertices, rng.randint(1, min(4, len(vertices)))))
        reference = community_propagation(graph, seeds, theta)
        fast = community_propagation_csr(csr, seeds, theta, workspace=workspace)
        assert fast.cpp == reference.cpp, (seed, theta)
        # Bit-identical float sum, not just approximate equality.
        assert fast.score == reference.score, (seed, theta)
        assert fast.vertices == reference.vertices
        assert fast.threshold == reference.threshold


@pytest.mark.parametrize("seed", range(12))
def test_nested_propagation_values_match_per_radius_runs(seed):
    """The chained per-radius pass equals three independent propagations."""
    _, graph = seeded_graph(seed)
    if graph.num_edges() == 0:
        pytest.skip("edgeless graph")
    csr = freeze(graph)
    workspace = CSRWorkspace(csr)
    centre = csr.table.index_of(next(iter(graph.vertices())))
    order = workspace.bfs_ball(centre, 3)
    dist = workspace.dist
    cuts = []
    position = 0
    for radius in (1, 2, 3):
        while position < len(order) and dist[order[position]] <= radius:
            position += 1
        cuts.append(position)
    chained = workspace.nested_propagation_values(order, cuts, 0.1)
    for radius, cut in enumerate(cuts, start=1):
        seeds = frozenset(csr.table.id_of(v) for v in order[:cut])
        reference = community_propagation(graph, seeds, 0.1)
        assert chained[radius - 1] == sorted(reference.cpp.values(), reverse=True), (
            seed,
            radius,
        )


@settings(max_examples=40, deadline=None)
@given(graph=social_networks(min_vertices=2, max_vertices=14))
def test_hypothesis_kernels_match_reference(graph):
    csr = freeze(graph)
    assert supports_as_dict(csr, edge_supports_csr(csr)) == edge_support(graph)
    fast = truss_decomposition_csr(csr)
    reference = truss_decomposition(graph)
    assert fast.edge_trussness == reference.edge_trussness
    assert fast.vertex_trussness == reference.vertex_trussness
    seeds = frozenset(list(graph.vertices())[:2])
    for theta in (0.0, 0.2):
        ours = community_propagation_csr(csr, seeds, theta)
        theirs = community_propagation(graph, seeds, theta)
        assert ours.cpp == theirs.cpp
        assert ours.score == theirs.score
