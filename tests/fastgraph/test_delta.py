"""DeltaCSR overlay + GraphCore protocol unit tests.

The structural contract of the mutable fast core: tombstoned deletions,
append-only spill insertions, stable edge ids, dirt-ratio accounting,
``compact()`` bit-identical to re-freezing the mutated reference graph, the
workspace sync protocol, and the edit-log rebuild path spawn workers use.
Every property is checked against the reference ``SocialNetwork`` mutated by
the same edits.
"""

from __future__ import annotations

import random

import pytest

from repro.dynamic.updates import UpdateBatch, random_update_batch
from repro.fastgraph.csr import freeze
from repro.fastgraph.delta import DeltaCSR, overlay_from_edit_log
from repro.fastgraph.kernels import CSRWorkspace, community_propagation_csr
from repro.graph.core import AdjacencyCore, GraphCore
from repro.graph.generators import erdos_renyi_graph
from repro.graph.keyword_assignment import assign_keywords
from repro.influence.propagation import community_propagation

_BUFFERS = ("indptr", "indices", "prob_out", "prob_in", "arc_edge", "edge_u", "edge_v")


def _seeded_graph(seed: int, num_vertices: int = 24):
    graph = erdos_renyi_graph(
        num_vertices, edge_probability=0.3, rng=seed,
        weight_range=(0.2, 0.9), name=f"delta-{seed}",
    )
    assign_keywords(graph, keywords_per_vertex=2, domain_size=8, rng=seed)
    return graph


def _mutated_pair(seed: int, edits: int = 12):
    """(mutated graph, overlay mutated by the same edits, the script)."""
    graph = _seeded_graph(seed)
    overlay = DeltaCSR(freeze(graph))
    script = random_update_batch(
        graph, edits, rng=seed, insert_ratio=0.5, grow_probability=0.2,
        keyword_pool=("alpha", "beta"),
    )
    script.validate_against(graph)
    script.apply_to(graph)
    overlay.replay(script)
    return graph, overlay, script


def _row_of(graph, overlay, vertex_id):
    index_of = overlay.table.index_of
    return {
        overlay.table.id_of(head)
        for head in overlay.neighbor_row(index_of(vertex_id))
    } == set(graph.neighbors(vertex_id))


class TestOverlaySemantics:
    @pytest.mark.parametrize("seed", range(6))
    def test_rows_track_the_mutated_graph(self, seed):
        graph, overlay, _ = _mutated_pair(seed)
        assert overlay.num_vertices == graph.num_vertices()
        assert overlay.num_edges == graph.num_edges()
        for vertex_id in graph.vertices():
            assert _row_of(graph, overlay, vertex_id), vertex_id
            assert overlay.degree(overlay.table.index_of(vertex_id)) == graph.degree(vertex_id)

    @pytest.mark.parametrize("seed", range(6))
    def test_probabilities_match_the_graph(self, seed):
        graph, overlay, _ = _mutated_pair(seed)
        index_of = overlay.table.index_of
        for u_id, v_id in graph.edges():
            assert overlay.probability(index_of(u_id), index_of(v_id)) == graph.probability(u_id, v_id)
            assert overlay.probability(index_of(v_id), index_of(u_id)) == graph.probability(v_id, u_id)

    @pytest.mark.parametrize("seed", range(6))
    def test_arcs_agree_with_rows(self, seed):
        graph, overlay, _ = _mutated_pair(seed)
        for vertex in range(overlay.num_vertices):
            row = dict(overlay.neighbor_row(vertex))
            seen = {}
            for head, p_out, p_in, edge_id in overlay.arcs(vertex):
                seen[head] = edge_id
                assert overlay.probability(vertex, head) == p_out
                assert overlay.probability(head, vertex) == p_in
            assert seen == row

    def test_edge_ids_are_stable_and_never_reused(self):
        graph = _seeded_graph(3)
        overlay = DeltaCSR(freeze(graph))
        u_id, v_id = next(iter(graph.edges()))
        index_of = overlay.table.index_of
        u, v = index_of(u_id), index_of(v_id)
        surviving = {
            head: edge_id
            for head, edge_id in overlay.neighbor_row(u).items()
            if head != v
        }
        old_id = overlay.neighbor_row(u)[v]
        retired = overlay.note_delete(u_id, v_id)
        assert retired == old_id
        fresh = overlay.note_insert(u_id, v_id, 0.4, 0.6)
        assert fresh != old_id  # retired ids are never reused
        assert fresh >= overlay.base.num_edges
        for head, edge_id in surviving.items():
            assert overlay.neighbor_row(u)[head] == edge_id  # untouched ids stable
        assert overlay.probability(u, v) == 0.4
        assert overlay.probability(v, u) == 0.6

    def test_new_vertices_are_interned_with_keywords(self):
        graph = _seeded_graph(4)
        overlay = DeltaCSR(freeze(graph))
        anchor = next(iter(graph.vertices()))
        overlay.note_insert(anchor, "brand-new", 0.5, 0.5, keywords_v={"zeta"})
        index = overlay.table.index_of("brand-new")
        assert overlay.keywords_of(index) == frozenset({"zeta"})
        assert overlay.degree(index) == 1

    def test_dirt_ratio_grows_with_edits_and_resets_on_compact(self):
        graph, overlay, _ = _mutated_pair(5)
        assert overlay.is_dirty
        assert overlay.dirt_ratio() > 0.0
        compacted = overlay.compact()
        assert DeltaCSR(compacted).dirt_ratio() == 0.0

    def test_live_edge_ids_cover_every_live_edge_once(self):
        graph, overlay, _ = _mutated_pair(6)
        ids = list(overlay.live_edge_ids())
        assert len(ids) == len(set(ids)) == graph.num_edges()
        keys = {overlay.edge_key(edge_id) for edge_id in ids}
        assert keys == {frozenset((u, v)) for u, v in graph.edges()}


class TestCompaction:
    @pytest.mark.parametrize("seed", range(8))
    def test_compact_is_bit_identical_to_refreeze(self, seed):
        graph, overlay, _ = _mutated_pair(seed, edits=16)
        compacted = overlay.compact()
        refrozen = freeze(graph)
        for name in _BUFFERS:
            assert getattr(compacted, name) == getattr(refrozen, name), (seed, name)
        assert compacted.keywords == refrozen.keywords
        assert compacted.table == refrozen.table

    def test_delete_then_reinsert_matches_dict_reorder(self):
        """A deleted-then-reinserted edge moves to the row's end in both worlds."""
        graph = _seeded_graph(7)
        overlay = DeltaCSR(freeze(graph))
        u_id, v_id = next(iter(graph.edges()))
        p_uv, p_vu = graph.probability(u_id, v_id), graph.probability(v_id, u_id)
        graph.remove_edge(u_id, v_id)
        overlay.note_delete(u_id, v_id)
        graph.add_edge(u_id, v_id, p_uv, p_vu)
        overlay.note_insert(u_id, v_id, p_uv, p_vu)
        compacted = overlay.compact()
        refrozen = freeze(graph)
        for name in _BUFFERS:
            assert getattr(compacted, name) == getattr(refrozen, name), name


class TestEditLogRebuild:
    @pytest.mark.parametrize("seed", range(4))
    def test_overlay_from_edit_log_reproduces_the_parent(self, seed):
        graph, overlay, script = _mutated_pair(seed)
        base_graph = overlay.base.thaw()
        rebuilt = overlay_from_edit_log(base_graph, [script.to_json()])
        assert rebuilt.num_vertices == overlay.num_vertices
        assert rebuilt.num_edges == overlay.num_edges
        for vertex in range(overlay.num_vertices):
            assert dict(rebuilt.neighbor_row(vertex)) == dict(overlay.neighbor_row(vertex))
        for name in _BUFFERS:
            assert getattr(rebuilt.compact(), name) == getattr(overlay.compact(), name)


class TestWorkspaceSync:
    @pytest.mark.parametrize("seed", range(5))
    def test_synced_workspace_equals_fresh_workspace(self, seed):
        graph = _seeded_graph(seed)
        overlay = DeltaCSR(freeze(graph))
        workspace = CSRWorkspace(overlay)
        script = random_update_batch(
            graph, 10, rng=seed, insert_ratio=0.5, grow_probability=0.25,
            keyword_pool=("alpha",),
        )
        script.validate_against(graph)
        script.apply_to(graph)
        overlay.replay(script)
        touched = workspace.sync()
        assert touched > 0
        fresh = CSRWorkspace(overlay)
        assert workspace.n == fresh.n
        assert workspace.neighbor_ints == fresh.neighbor_ints
        assert workspace.ranked_arcs == fresh.ranked_arcs
        assert workspace.edge_arcs == fresh.edge_arcs
        assert workspace.sync() == 0  # idempotent once drained

    def test_rebind_carries_entries_over_a_pristine_overlay(self):
        graph = _seeded_graph(11)
        base = freeze(graph)
        workspace = CSRWorkspace(base)
        before = list(workspace.ranked_arcs)
        overlay = DeltaCSR(base)
        workspace.rebind(overlay)
        assert workspace.core is overlay
        assert workspace.ranked_arcs == before
        anchor = next(iter(graph.vertices()))
        other = [v for v in graph.vertices() if not graph.has_edge(anchor, v) and v != anchor][0]
        overlay.note_insert(anchor, other, 0.7, 0.7)
        assert workspace.sync() == 2


class TestPropagationOverOverlay:
    @pytest.mark.parametrize("seed", range(5))
    def test_overlay_propagation_matches_reference(self, seed):
        graph, overlay, _ = _mutated_pair(seed)
        rng = random.Random(seed)
        vertices = sorted(graph.vertices(), key=repr)
        seeds = frozenset(rng.sample(vertices, 3))
        for theta in (0.1, 0.3):
            ours = community_propagation_csr(overlay, seeds, theta)
            reference = community_propagation(graph, seeds, theta)
            assert ours.cpp == reference.cpp
            assert ours.score == reference.score


class TestAdjacencyCore:
    @pytest.mark.parametrize("seed", range(4))
    def test_noted_edits_match_a_fresh_view(self, seed):
        graph = _seeded_graph(seed, num_vertices=18)
        core = AdjacencyCore(graph)
        script = random_update_batch(
            graph, 10, rng=seed, insert_ratio=0.5, grow_probability=0.2,
        )
        script.validate_against(graph)
        from repro.dynamic.updates import INSERT

        for update in script:
            if update.op == INSERT:
                p_uv = 0.5 if update.p_uv is None else update.p_uv
                p_vu = p_uv if update.p_vu is None else update.p_vu
                for vertex, keywords in (
                    (update.u, update.keywords_u), (update.v, update.keywords_v),
                ):
                    if not graph.has_vertex(vertex):
                        graph.add_vertex(vertex, keywords)
                graph.add_edge(update.u, update.v, p_uv, p_vu)
                core.note_insert(update.u, update.v, p_uv, p_vu)
            else:
                graph.remove_edge(update.u, update.v)
                core.note_delete(update.u, update.v)
        fresh = AdjacencyCore(graph)
        assert core.num_vertices == fresh.num_vertices
        assert core.num_edges == fresh.num_edges == graph.num_edges()
        for vertex in range(core.num_vertices):
            assert set(core.neighbor_row(vertex)) == set(fresh.neighbor_row(vertex))
        # Live edge keys agree (ids are assignment-order specific).
        ours = {core.edge_key(e) for e in core.live_edge_ids()}
        assert ours == {fresh.edge_key(e) for e in fresh.live_edge_ids()}

    def test_cores_satisfy_the_runtime_protocol(self):
        graph = _seeded_graph(1, num_vertices=10)
        assert isinstance(AdjacencyCore(graph), GraphCore)
        assert isinstance(DeltaCSR(freeze(graph)), GraphCore)


class TestUpdateBatchReplayValidation:
    def test_replay_rejects_missing_edge_deletion(self):
        graph = _seeded_graph(2, num_vertices=8)
        overlay = DeltaCSR(freeze(graph))
        from repro.dynamic.updates import EdgeUpdate
        from repro.exceptions import GraphError

        missing = EdgeUpdate.delete("nope-a", "nope-b")
        overlay.note_insert("nope-a", "nope-b", 0.5, 0.5)
        overlay.note_delete("nope-a", "nope-b")
        with pytest.raises(GraphError):
            overlay.replay(UpdateBatch([missing]))
