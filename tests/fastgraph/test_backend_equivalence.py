"""System-level cross-backend equivalence: index aggregates and query answers.

Builds the engine once per backend over the same graph and asserts that
everything observable is identical — pre-computed records bit for bit
(floats included), and TopL-ICDE / DTopL-ICDE answers community for
community, score for score.  The CI backend-matrix leg runs this module
with ``REPRO_TEST_BACKEND=fast`` (also the default here); the variable
selects the backend under test, which is always compared against a
reference-backend build of the same graph.  ``REPRO_TEST_KERNELS``
additionally pins the fast backend's kernel tier (``stdlib`` or
``vector``) — the CI kernels-matrix leg exports ``vector`` so the numpy
array programs face the same gates as the stdlib kernels.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import random_update_batch
from repro.exceptions import QueryParameterError
from repro.graph.generators import erdos_renyi_graph
from repro.index.precompute import precompute
from repro.query.params import make_dtopl_query, make_topl_query

from tests.property.strategies import KEYWORD_POOL, social_networks

#: Backend under test; the CI matrix exports REPRO_TEST_BACKEND=fast.
BACKEND = os.environ.get("REPRO_TEST_BACKEND", "fast")
#: Kernel tier of the fast backend; the kernels-matrix leg exports "vector".
KERNEL_TIER = os.environ.get("REPRO_TEST_KERNELS", "auto")

if KERNEL_TIER == "vector":
    from repro.fastgraph.csr import NUMPY_AVAILABLE

    if not NUMPY_AVAILABLE:  # pragma: no cover - guards a misconfigured matrix leg
        pytest.skip(
            "REPRO_TEST_KERNELS=vector needs numpy", allow_module_level=True
        )

_THRESHOLDS = (0.1, 0.3)


def _seeded_graph(seed: int):
    rng = random.Random(seed)
    graph = erdos_renyi_graph(
        rng.randint(6, 18),
        edge_probability=rng.uniform(0.2, 0.55),
        rng=seed,
        weight_range=(0.15, 0.85),
        name=f"backend-equiv-{seed}",
    )
    for vertex in list(graph.vertices()):
        graph.set_keywords(vertex, rng.sample(KEYWORD_POOL, rng.randint(1, 3)))
    return rng, graph


def assert_precomputed_equal(ours, reference, context) -> None:
    """Bit-for-bit equality of two PrecomputedData objects."""
    assert ours.global_edge_support == reference.global_edge_support, context
    assert set(ours.vertex_aggregates) == set(reference.vertex_aggregates), context
    for vertex, mine in ours.vertex_aggregates.items():
        theirs = reference.vertex_aggregates[vertex]
        assert mine.keyword_bitvector == theirs.keyword_bitvector, (context, vertex)
        assert mine.center_trussness == theirs.center_trussness, (context, vertex)
        assert set(mine.per_radius) == set(theirs.per_radius), (context, vertex)
        for radius in mine.per_radius:
            fast_r = mine.per_radius[radius]
            ref_r = theirs.per_radius[radius]
            assert fast_r.bitvector == ref_r.bitvector, (context, vertex, radius)
            assert fast_r.support_upper_bound == ref_r.support_upper_bound, (
                context, vertex, radius,
            )
            # Exact float equality is the contract, not pytest.approx.
            assert fast_r.score_bounds == ref_r.score_bounds, (context, vertex, radius)


def _fingerprint(result):
    return tuple((c.center, c.vertices, c.score) for c in result)


def _check_precompute(seed: int) -> None:
    _, graph = _seeded_graph(seed)
    reference = precompute(graph, max_radius=3, thresholds=_THRESHOLDS, num_bits=32)
    fast = precompute(
        graph, max_radius=3, thresholds=_THRESHOLDS, num_bits=32, backend=BACKEND,
        kernel_tier=KERNEL_TIER,
    )
    assert_precomputed_equal(fast, reference, seed)


def _check_answers(seed: int) -> None:
    rng, graph = _seeded_graph(seed)
    config = EngineConfig(max_radius=2, thresholds=_THRESHOLDS, fanout=3, leaf_capacity=4)
    reference = InfluentialCommunityEngine.build(graph, config=config, validate=False)
    under_test = InfluentialCommunityEngine.build(
        graph.copy(),
        config=EngineConfig(
            max_radius=2, thresholds=_THRESHOLDS, fanout=3, leaf_capacity=4,
            backend=BACKEND, kernel_tier=KERNEL_TIER,
        ),
        validate=False,
    )
    for _ in range(3):
        keywords = frozenset(rng.sample(KEYWORD_POOL, rng.randint(1, 3)))
        query = make_topl_query(
            keywords,
            k=rng.choice((3, 4)),
            radius=rng.choice((1, 2)),
            theta=rng.choice((0.1, 0.3)),
            top_l=rng.choice((2, 3)),
        )
        assert _fingerprint(under_test.topl(query)) == _fingerprint(
            reference.topl(query)
        ), (seed, query)
    dquery = make_dtopl_query(
        keywords, k=3, radius=2, theta=0.1, top_l=2, candidate_factor=2
    )
    ours, theirs = under_test.dtopl(dquery), reference.dtopl(dquery)
    assert _fingerprint(ours) == _fingerprint(theirs), (seed, dquery)
    assert ours.diversity_score == theirs.diversity_score, (seed, dquery)


@pytest.mark.parametrize("seed", range(25))
def test_precompute_bit_identical_quick(seed):
    _check_precompute(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(25, 125))
def test_precompute_bit_identical_nightly(seed):
    _check_precompute(seed)


@pytest.mark.parametrize("seed", range(12))
def test_query_answers_identical_quick(seed):
    _check_answers(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(12, 62))
def test_query_answers_identical_nightly(seed):
    _check_answers(seed)


@settings(max_examples=25, deadline=None)
@given(graph=social_networks(min_vertices=3, max_vertices=12))
def test_hypothesis_precompute_bit_identical(graph):
    reference = precompute(graph, max_radius=2, thresholds=_THRESHOLDS, num_bits=32)
    fast = precompute(
        graph, max_radius=2, thresholds=_THRESHOLDS, num_bits=32, backend=BACKEND,
        kernel_tier=KERNEL_TIER,
    )
    assert_precomputed_equal(fast, reference, "hypothesis")


def test_serving_layer_inherits_backend():
    _, graph = _seeded_graph(901)
    engine = InfluentialCommunityEngine.build(
        graph,
        config=EngineConfig(
            max_radius=2, thresholds=_THRESHOLDS, backend=BACKEND,
            kernel_tier=KERNEL_TIER,
        ),
        validate=False,
    )
    serving = engine.serve()
    assert serving._topl.backend == BACKEND
    query = make_topl_query(frozenset(KEYWORD_POOL[:3]), k=3, radius=2, theta=0.1, top_l=3)
    direct = engine.topl(query)
    served = serving.answer(query)
    assert _fingerprint(direct) == _fingerprint(served)


def test_dynamic_updates_fall_back_and_stay_equivalent():
    """After apply_updates the fast engine must agree with a fresh reference build."""
    rng, graph = _seeded_graph(902)
    engine = InfluentialCommunityEngine.build(
        graph,
        config=EngineConfig(
            max_radius=2, thresholds=_THRESHOLDS, backend=BACKEND,
            kernel_tier=KERNEL_TIER,
        ),
        validate=False,
    )
    assert engine.frozen_graph() is (None if BACKEND == "reference" else engine._frozen)
    batch = random_update_batch(graph, 6, rng=rng, insert_ratio=0.5)
    report = engine.apply_updates(batch, damage_threshold=1.0)
    assert report.mode == "incremental"
    if BACKEND == "fast":
        # The snapshot is patched in place (a DeltaCSR overlay) — or, when
        # the batch pushed the dirt ratio over the compaction knob, folded
        # straight into a pure CSR.  Either way it tracks the mutated graph
        # with no full re-freeze.
        assert report.applied_mode in ("patch", "compact")
        assert engine._frozen is not None
        assert engine._frozen.num_edges == graph.num_edges()
        assert engine._frozen.num_vertices == graph.num_vertices()
    else:
        assert engine._frozen is None  # the reference backend has no snapshot
    fresh = InfluentialCommunityEngine.build(
        graph.copy(),
        config=EngineConfig(max_radius=2, thresholds=_THRESHOLDS),
        validate=False,
    )
    assert_precomputed_equal(
        engine.index.precomputed, fresh.index.precomputed, "post-update"
    )
    query = make_topl_query(frozenset(KEYWORD_POOL[:2]), k=3, radius=2, theta=0.1, top_l=3)
    # The patched tree's node layout differs from a freshly built tree's, so
    # the credited centre of a community may differ (any member of a dense
    # cluster is a valid centre); the communities and scores must not.
    patched = tuple((c.vertices, c.score) for c in engine.topl(query))
    rebuilt = tuple((c.vertices, c.score) for c in fresh.topl(query))
    assert patched == rebuilt


def test_engine_config_rejects_unknown_backend():
    with pytest.raises(QueryParameterError):
        EngineConfig(backend="gpu")


def test_engine_config_describe_includes_backend():
    assert EngineConfig(backend="fast").describe()["backend"] == "fast"
