"""Vector-tier equivalence: the numpy kernels vs the stdlib kernels, bit for bit.

The ``kernel_tier="vector"`` workspace re-implements every fast kernel as a
numpy array program over the zero-copy CSR views.  Its contract is *bit
identity* with the stdlib tier — identical ints for supports and trussness,
bit-identical floats for propagation labels and influential scores — so this
module compares the two workspaces kernel by kernel on seeded and
hypothesis-generated graphs, then climbs the stack: ``precompute`` under both
tiers, engine answers across all three tiers plus the reference backend, the
compact-before-vectorise rule for dirty overlays, and store-attached engines.

The whole module is skipped when numpy is absent (the stdlib fallback is what
the rest of the suite already exercises); the CI kernels-matrix leg runs the
fastgraph suite with ``REPRO_TEST_KERNELS=vector`` to force the tier through
``tests/fastgraph/test_backend_equivalence.py`` as well.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.fastgraph.csr import NUMPY_AVAILABLE

if not NUMPY_AVAILABLE:  # pragma: no cover - exercised by the no-numpy CI leg
    pytest.skip("numpy unavailable: the vector tier cannot run", allow_module_level=True)

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import random_update_batch
from repro.exceptions import GraphError, QueryParameterError
from repro.fastgraph import freeze, make_workspace, resolve_kernel_tier
from repro.fastgraph.delta import DeltaCSR
from repro.fastgraph.kernels import CSRWorkspace
from repro.fastgraph.vectorised import VectorWorkspace
from repro.index.precompute import precompute
from repro.query.params import make_dtopl_query, make_topl_query
from repro.store import pack_store

from tests.fastgraph.test_backend_equivalence import assert_precomputed_equal
from tests.fastgraph.test_kernel_equivalence import seeded_graph
from tests.property.strategies import social_networks

_THRESHOLDS = (0.1, 0.3)


@pytest.fixture
def force_vector(monkeypatch):
    """Drop the adaptive cutoffs so small test graphs hit the numpy paths.

    Production sizes route small graphs to the stdlib kernels (same output,
    less overhead); the equivalence claim is about the numpy code, so the
    tests force it.
    """
    import repro.fastgraph.vectorised as vectorised

    monkeypatch.setattr(vectorised, "DENSE_ROW_CUTOFF", 0)
    monkeypatch.setattr(vectorised, "VECTOR_BFS_CUTOFF", 0)
    monkeypatch.setattr(vectorised, "VECTOR_NESTED_CUTOFF", 0)
    monkeypatch.setattr(vectorised, "VECTOR_PEEL_CUTOFF", 0)
    monkeypatch.setattr(vectorised, "VECTOR_PEEL_DENSITY", 0.0)
    monkeypatch.setattr(vectorised, "VECTOR_BFS_FRONTIER_CUTOFF", 0)


def _workspaces(graph):
    csr = freeze(graph)
    return csr, CSRWorkspace(csr), VectorWorkspace(csr)


def _assert_workspaces_agree(rng, graph) -> None:
    """Every kernel of the two tiers, compared exactly on one graph."""
    csr, stdlib, vector = _workspaces(graph)
    assert list(stdlib.edge_supports()) == vector.edge_supports().tolist()

    edge_std, vertex_std = stdlib.truss_peel()
    edge_vec, vertex_vec = vector.truss_peel()
    assert list(edge_std) == list(edge_vec)
    assert list(vertex_std) == list(vertex_vec)

    n = csr.num_vertices
    for centre in range(min(n, 5)):
        for radius in (1, 2, 3):
            order_std = stdlib.bfs_ball(centre, radius)
            ball_std = {v: stdlib.dist[v] for v in order_std}
            order_vec = vector.bfs_ball(centre, radius)
            ball_vec = {int(v): int(vector.dist[v]) for v in list(order_vec)}
            assert ball_std == ball_vec, (centre, radius)
            # Visit order must stay non-decreasing in depth (the per-radius
            # cuts of Algorithm 2 slice it by shell).
            depths = [ball_vec[int(v)] for v in list(order_vec)]
            assert depths == sorted(depths)

    vertices = list(range(n))
    for theta in (0.0, 0.05, 0.35):
        seeds = rng.sample(vertices, rng.randint(1, min(4, n)))
        labels_std = stdlib.propagate(list(seeds), theta)
        labels_vec = vector.propagate(list(seeds), theta)
        assert labels_std == labels_vec, theta
        for vertex, probability in labels_vec:
            # Plain python scalars at the boundary: np.int64 is not an int
            # and would break JSON serialization downstream.
            assert type(vertex) is int and type(probability) is float


@pytest.mark.parametrize("seed", range(20))
def test_kernels_bit_identical_quick(seed, force_vector):
    rng, graph = seeded_graph(seed)
    _assert_workspaces_agree(rng, graph)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(20, 80))
def test_kernels_bit_identical_nightly(seed, force_vector):
    rng, graph = seeded_graph(seed)
    _assert_workspaces_agree(rng, graph)


@pytest.mark.parametrize("seed", range(12))
def test_nested_propagation_bit_identical(seed, force_vector):
    """The chained per-radius propagation (Algorithm 2's inner loop)."""
    _, graph = seeded_graph(seed)
    if graph.num_edges() == 0:
        pytest.skip("edgeless graph")
    csr, stdlib, vector = _workspaces(graph)
    centre = 0
    order_std = stdlib.bfs_ball(centre, 3)
    cuts = []
    position = 0
    for radius in (1, 2, 3):
        while position < len(order_std) and stdlib.dist[order_std[position]] <= radius:
            position += 1
        cuts.append(position)
    order_vec = vector.bfs_ball(centre, 3)
    for theta in (0.0, 0.1):
        values_std = stdlib.nested_propagation_values(order_std, cuts, theta)
        values_vec = vector.nested_propagation_values(order_vec, cuts, theta)
        # Orders may differ within one shell; the descending value lists (and
        # therefore the score sums) must not.
        assert values_std == values_vec, (seed, theta)


@settings(max_examples=30, deadline=None)
@given(graph=social_networks(min_vertices=2, max_vertices=14))
def test_hypothesis_kernels_bit_identical(graph):
    import repro.fastgraph.vectorised as vectorised

    knobs = (
        "DENSE_ROW_CUTOFF",
        "VECTOR_BFS_CUTOFF",
        "VECTOR_NESTED_CUTOFF",
        "VECTOR_PEEL_CUTOFF",
        "VECTOR_PEEL_DENSITY",
        "VECTOR_BFS_FRONTIER_CUTOFF",
    )
    original = {knob: getattr(vectorised, knob) for knob in knobs}
    for knob in knobs:
        setattr(vectorised, knob, 0)
    try:
        _assert_workspaces_agree(random.Random(0), graph)
    finally:
        for knob, value in original.items():
            setattr(vectorised, knob, value)


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("num_bits", (16, 32))
def test_precompute_bit_identical_across_tiers(seed, num_bits, force_vector):
    _, graph = seeded_graph(seed)
    stdlib = precompute(
        graph, max_radius=3, thresholds=_THRESHOLDS, num_bits=num_bits,
        backend="fast", kernel_tier="stdlib",
    )
    vector = precompute(
        graph, max_radius=3, thresholds=_THRESHOLDS, num_bits=num_bits,
        backend="fast", kernel_tier="vector",
    )
    reference = precompute(graph, max_radius=3, thresholds=_THRESHOLDS, num_bits=num_bits)
    assert_precomputed_equal(vector, stdlib, seed)
    assert_precomputed_equal(vector, reference, seed)


def _fingerprint(result):
    return tuple((c.center, c.vertices, c.score) for c in result)


def _build_engines(make_graph, tiers=("stdlib", "vector", "auto")):
    engines = {
        tier: InfluentialCommunityEngine.build(
            make_graph(),
            config=EngineConfig(
                max_radius=2, thresholds=_THRESHOLDS, backend="fast", kernel_tier=tier
            ),
            validate=False,
        )
        for tier in tiers
    }
    engines["reference"] = InfluentialCommunityEngine.build(
        make_graph(),
        config=EngineConfig(max_radius=2, thresholds=_THRESHOLDS),
        validate=False,
    )
    return engines


@pytest.mark.parametrize("seed", range(6))
def test_engine_answers_identical_across_tiers(seed, force_vector):
    rng, _ = seeded_graph(seed)
    engines = _build_engines(lambda: seeded_graph(seed)[1])
    from tests.property.strategies import KEYWORD_POOL

    for _ in range(3):
        keywords = frozenset(rng.sample(KEYWORD_POOL, rng.randint(1, 3)))
        query = make_topl_query(
            keywords, k=rng.choice((3, 4)), radius=rng.choice((1, 2)),
            theta=rng.choice((0.1, 0.3)), top_l=rng.choice((2, 3)),
        )
        answers = {name: _fingerprint(e.topl(query)) for name, e in engines.items()}
        assert len(set(answers.values())) == 1, (seed, query, answers)
    dquery = make_dtopl_query(keywords, k=3, radius=2, theta=0.1, top_l=2, candidate_factor=2)
    danswers = {name: e.dtopl(dquery) for name, e in engines.items()}
    assert len({_fingerprint(a) for a in danswers.values()}) == 1, (seed, dquery)
    assert len({a.diversity_score for a in danswers.values()}) == 1


def test_dirty_overlay_demotes_then_stays_equivalent(force_vector):
    """Compact-before-vectorise: a mutated engine keeps answering exactly.

    ``apply_updates`` patches the snapshot through a :class:`DeltaCSR`
    overlay; the vector workspace must demote to the stdlib kernels (the
    array programs cannot read the overlay) without changing a single bit
    of the answers.
    """
    rng, graph = seeded_graph(903)
    engine = InfluentialCommunityEngine.build(
        graph,
        config=EngineConfig(
            max_radius=2, thresholds=_THRESHOLDS, backend="fast", kernel_tier="vector"
        ),
        validate=False,
    )
    batch = random_update_batch(graph, 6, rng=rng, insert_ratio=0.5)
    report = engine.apply_updates(batch, damage_threshold=1.0)
    assert report.mode == "incremental"
    fresh = InfluentialCommunityEngine.build(
        graph.copy(),
        config=EngineConfig(max_radius=2, thresholds=_THRESHOLDS),
        validate=False,
    )
    assert_precomputed_equal(engine.index.precomputed, fresh.index.precomputed, "post-update")
    from tests.property.strategies import KEYWORD_POOL

    query = make_topl_query(frozenset(KEYWORD_POOL[:2]), k=3, radius=2, theta=0.1, top_l=3)
    patched = tuple((c.vertices, c.score) for c in engine.topl(query))
    rebuilt = tuple((c.vertices, c.score) for c in fresh.topl(query))
    assert patched == rebuilt


def test_make_workspace_applies_compact_before_vectorise():
    _, graph = seeded_graph(7)
    csr = freeze(graph)
    assert isinstance(make_workspace(csr, "vector"), VectorWorkspace)
    assert isinstance(make_workspace(csr, "auto"), VectorWorkspace)
    assert type(make_workspace(csr, "stdlib")) is CSRWorkspace
    # A mutable overlay never gets the vector tier, whatever was requested.
    assert type(make_workspace(DeltaCSR(csr), "vector")) is CSRWorkspace


def test_workspace_demotes_on_mutation(force_vector):
    """A rebound workspace whose core mutates drops to the stdlib kernels."""
    _, graph = seeded_graph(11)
    csr = freeze(graph)
    overlay = DeltaCSR(csr)
    workspace = VectorWorkspace(csr)
    assert workspace.vector_ready
    workspace.rebind(overlay)
    vertices = sorted(graph.vertices())
    overlay.note_insert(vertices[0], 10**6, 0.5, 0.5, keywords_v=frozenset({"movies"}))
    workspace.sync()
    assert not workspace.vector_ready
    # Still correct — now through the inherited stdlib kernels over the
    # overlay (the per-centre kernels are the ones the refresh path runs).
    source = overlay.table.index_of(vertices[0])
    expected = CSRWorkspace(overlay)
    order_demoted = workspace.bfs_ball(source, 2)
    ball_demoted = {v: workspace.dist[v] for v in order_demoted}
    order_fresh = expected.bfs_ball(source, 2)
    assert ball_demoted == {v: expected.dist[v] for v in order_fresh}
    assert overlay.table.index_of(10**6) in ball_demoted


def test_store_attached_engine_runs_vector_tier(tmp_path, force_vector):
    _, graph = seeded_graph(904)
    built = InfluentialCommunityEngine.build(
        graph,
        config=EngineConfig(
            max_radius=2, thresholds=_THRESHOLDS, backend="fast", kernel_tier="vector"
        ),
        validate=False,
    )
    path = tmp_path / "vector.repro-store"
    pack_store(built, str(path))
    attached = InfluentialCommunityEngine.from_store(str(path))
    assert attached.config.kernel_tier == "vector"
    assert attached.describe()["kernels"]["active"] == "vector"
    from tests.property.strategies import KEYWORD_POOL

    query = make_topl_query(frozenset(KEYWORD_POOL[:3]), k=3, radius=2, theta=0.1, top_l=3)
    assert _fingerprint(attached.topl(query)) == _fingerprint(built.topl(query))


def test_serving_layer_inherits_kernel_tier():
    _, graph = seeded_graph(905)
    engine = InfluentialCommunityEngine.build(
        graph,
        config=EngineConfig(
            max_radius=2, thresholds=_THRESHOLDS, backend="fast", kernel_tier="vector"
        ),
        validate=False,
    )
    serving = engine.serve()
    assert serving._topl.kernel_tier == "vector"


def test_resolve_kernel_tier():
    assert resolve_kernel_tier("auto") == "vector"  # numpy is importable here
    assert resolve_kernel_tier("stdlib") == "stdlib"
    assert resolve_kernel_tier("vector") == "vector"
    with pytest.raises(GraphError):
        resolve_kernel_tier("simd")


def test_resolve_kernel_tier_without_numpy(monkeypatch):
    import repro.fastgraph.csr as csr_module

    monkeypatch.setattr(csr_module, "NUMPY_AVAILABLE", False)
    assert resolve_kernel_tier("auto") == "stdlib"
    assert resolve_kernel_tier("stdlib") == "stdlib"
    with pytest.raises(GraphError, match="numpy"):
        resolve_kernel_tier("vector")


def test_engine_config_validates_kernel_tier():
    assert EngineConfig(kernel_tier="vector").describe()["kernel_tier"] == "vector"
    with pytest.raises(QueryParameterError):
        EngineConfig(kernel_tier="simd")


def test_describe_surfaces_kernel_diagnostics():
    _, graph = seeded_graph(906)
    fast = InfluentialCommunityEngine.build(
        graph,
        config=EngineConfig(max_radius=2, thresholds=_THRESHOLDS, backend="fast"),
        validate=False,
    )
    kernels = fast.describe()["kernels"]
    assert kernels == {"requested": "auto", "active": "vector", "numpy_version": kernels["numpy_version"]}
    assert kernels["numpy_version"]
    reference = InfluentialCommunityEngine.build(
        graph.copy(),
        config=EngineConfig(max_radius=2, thresholds=_THRESHOLDS),
        validate=False,
    )
    assert reference.describe()["kernels"]["active"] is None
