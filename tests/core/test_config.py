"""Unit tests for EngineConfig."""

import pytest

from repro.core.config import EngineConfig
from repro.exceptions import QueryParameterError


class TestEngineConfig:
    def test_defaults_match_paper(self):
        config = EngineConfig.paper_defaults()
        assert config.max_radius == 3
        assert config.thresholds == (0.1, 0.2, 0.3)
        assert config.num_bits == 64

    def test_thresholds_sorted_and_deduplicated(self):
        config = EngineConfig(thresholds=(0.3, 0.1, 0.1))
        assert config.thresholds == (0.1, 0.3)

    def test_invalid_radius(self):
        with pytest.raises(QueryParameterError):
            EngineConfig(max_radius=0)

    def test_invalid_thresholds(self):
        with pytest.raises(QueryParameterError):
            EngineConfig(thresholds=())
        with pytest.raises(QueryParameterError):
            EngineConfig(thresholds=(0.5, 1.0))

    def test_invalid_bits_fanout_capacity(self):
        with pytest.raises(QueryParameterError):
            EngineConfig(num_bits=0)
        with pytest.raises(QueryParameterError):
            EngineConfig(fanout=1)
        with pytest.raises(QueryParameterError):
            EngineConfig(leaf_capacity=0)

    def test_describe(self):
        config = EngineConfig(max_radius=2, thresholds=(0.2,), fanout=4, leaf_capacity=8)
        summary = config.describe()
        assert summary["r_max"] == 2
        assert summary["thresholds"] == [0.2]
        assert summary["fanout"] == 4

    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(Exception):
            config.max_radius = 5
