"""Unit and integration tests for the high-level engine."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.exceptions import GraphError
from repro.query.params import make_dtopl_query, make_topl_query


class TestBuild:
    def test_build_and_describe(self, two_cliques_bridge):
        engine = InfluentialCommunityEngine.build(
            two_cliques_bridge, config=EngineConfig(max_radius=2)
        )
        summary = engine.describe()
        assert summary["graph"]["num_vertices"] == 10
        assert summary["index"]["max_radius"] == 2
        assert summary["config"]["r_max"] == 2

    def test_build_validates_graph(self, triangle_graph):
        triangle_graph._prob[("a", "b")] = 2.0  # corrupt on purpose
        with pytest.raises(GraphError):
            InfluentialCommunityEngine.build(triangle_graph)

    def test_build_without_validation_skips_check(self, triangle_graph):
        triangle_graph._prob[("a", "b")] = 0.9
        engine = InfluentialCommunityEngine.build(triangle_graph, validate=False)
        assert engine.graph is triangle_graph

    def test_custom_config_respected(self, two_cliques_bridge):
        config = EngineConfig(max_radius=1, thresholds=(0.2,), fanout=3, leaf_capacity=2)
        engine = InfluentialCommunityEngine.build(two_cliques_bridge, config=config)
        assert engine.index.max_radius == 1
        assert engine.index.thresholds == (0.2,)
        assert engine.index.leaf_capacity == 2


class TestQueries:
    def test_topl_query(self, two_cliques_bridge):
        engine = InfluentialCommunityEngine.build(
            two_cliques_bridge, config=EngineConfig(max_radius=2)
        )
        result = engine.topl(make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2))
        assert len(result) == 2

    def test_dtopl_query(self, two_cliques_bridge):
        engine = InfluentialCommunityEngine.build(
            two_cliques_bridge, config=EngineConfig(max_radius=2)
        )
        query = make_dtopl_query(
            {"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2, candidate_factor=2
        )
        result = engine.dtopl(query)
        assert len(result) == 2
        assert result.diversity_score > 0

    def test_kcore_helpers(self, two_cliques_bridge):
        engine = InfluentialCommunityEngine.build(
            two_cliques_bridge, config=EngineConfig(max_radius=2)
        )
        topl = engine.topl(make_topl_query({"movies"}, k=4, radius=1, theta=0.1, top_l=1)).best
        comparison = engine.kcore_comparison(topl, k=3)
        assert comparison["topl_icde"]["score"] > 0
        community = engine.kcore_community(0, k=3, theta=0.1)
        assert community is not None
        assert community.vertices == frozenset(range(4))


class TestPersistence:
    def test_save_and_reload_round_trip(self, tmp_path, two_cliques_bridge):
        engine = InfluentialCommunityEngine.build(
            two_cliques_bridge, config=EngineConfig(max_radius=2)
        )
        path = tmp_path / "index.json"
        engine.save_index(path)
        reloaded = InfluentialCommunityEngine.from_saved_index(two_cliques_bridge, path)
        query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2)
        original = engine.topl(query)
        recovered = reloaded.topl(query)
        assert list(original.scores) == pytest.approx(list(recovered.scores))
        assert reloaded.config.max_radius == engine.config.max_radius

    def test_reloaded_config_derived_from_index(self, tmp_path, two_cliques_bridge):
        engine = InfluentialCommunityEngine.build(
            two_cliques_bridge,
            config=EngineConfig(max_radius=1, thresholds=(0.15,), fanout=3, leaf_capacity=2),
        )
        path = tmp_path / "index.json"
        engine.save_index(path)
        reloaded = InfluentialCommunityEngine.from_saved_index(two_cliques_bridge, path)
        assert reloaded.config.thresholds == (0.15,)
        assert reloaded.config.fanout == 3
        assert reloaded.config.leaf_capacity == 2
