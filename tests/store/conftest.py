"""Shared fixtures for the store suite: one packed engine, reused read-only."""

from __future__ import annotations

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.graph.generators import planted_community_graph
from repro.store import pack_store


def build_store_graph():
    """A 28-vertex planted network whose queries return real communities."""
    graph = planted_community_graph(
        [10, 10, 8],
        intra_probability=0.8,
        inter_probability=0.05,
        rng=5,
        name="store-planted",
    )
    for vertex in graph.vertices():
        graph.set_keywords(vertex, {"movies"} if vertex < 20 else {"books"})
    return graph


@pytest.fixture(scope="module")
def store_graph():
    return build_store_graph()


@pytest.fixture
def store_graph_factory():
    """A fresh, mutation-safe copy of the shared graph per call."""
    return build_store_graph


@pytest.fixture(scope="module")
def store_engine(store_graph) -> InfluentialCommunityEngine:
    return InfluentialCommunityEngine.build(
        store_graph, config=EngineConfig(max_radius=2), validate=False
    )


@pytest.fixture(scope="module")
def packed_store(store_engine, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("store") / "planted.repro-store"
    pack_store(store_engine, str(path))
    return str(path)
