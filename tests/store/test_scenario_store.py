"""Scenario integration: the ``engine.store`` knob routes replay through a store."""

from __future__ import annotations

import pytest

from repro.exceptions import ScenarioError
from repro.scenarios.pipeline import run_scenario
from repro.scenarios.spec import EngineSpec, ScenarioSpec


def _spec_document(store: object) -> dict:
    return {
        "scenario": {"name": "store-smoke", "seed": 7, "smoke": True},
        "graph": {
            "recipe": "planted",
            "num_vertices": 60,
            "keyword_domain": 6,
            "params": {"communities": 3, "intra_probability": 0.3},
        },
        "probabilities": {"model": "weighted_cascade"},
        "engine": {"max_radius": 2, "store": store},
        "trace": {"kind": "bursty", "operations": 6, "update_share": 0.25},
        "queries": {"theta": 0.05, "num_keywords": 2, "k": 3, "top_l": 2},
        "gates": {"require_equivalence": True, "min_nonempty_results": 0},
    }


def test_engine_spec_store_round_trips():
    spec = ScenarioSpec.from_dict(_spec_document(store=True))
    assert spec.engine.store is True
    assert spec.to_dict()["engine"]["store"] is True
    # Default stays off and round-trips too.
    assert EngineSpec().store is False
    assert ScenarioSpec.from_dict(_spec_document(store=False)).engine.store is False


def test_engine_spec_store_must_be_boolean():
    with pytest.raises(ScenarioError, match="engine.store must be a boolean"):
        ScenarioSpec.from_dict(_spec_document(store="yes"))


@pytest.mark.slow
def test_store_backed_scenario_passes_gates():
    """Both backends replay through one packed store and still agree."""
    report = run_scenario(
        ScenarioSpec.from_dict(_spec_document(store=True)), enforce_gates=True
    )
    assert report.passed
    assert report.equivalence
