"""Arena tests: pack → open reconstructs the engine bit-identically."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.engine import InfluentialCommunityEngine
from repro.exceptions import StoreFormatError
from repro.index.serialization import precomputed_to_dict
from repro.query.params import make_dtopl_query, make_topl_query
from repro.store import open_store, pack_store, verify_store
from repro.store.container import write_container


TOPL = make_topl_query({"movies"}, k=3, radius=2, theta=0.1, top_l=3)
DTOPL = make_dtopl_query({"movies", "books"}, k=3, radius=2, theta=0.1, top_l=2)


def _fingerprint(result):
    return tuple(
        (community.vertices, round(community.score, 12)) for community in result
    )


@pytest.mark.parametrize("mmap", [True, False], ids=["mmap", "heap"])
def test_round_trip_reconstruction(store_engine, packed_store, mmap):
    handle = open_store(packed_store, mmap=mmap)
    assert handle.info["residency"] == ("mmap" if mmap else "heap")
    assert handle.info["generation"] == 0

    # Graph: same vertices (same order), keywords and directed probabilities.
    original = store_engine.graph
    assert list(handle.graph.vertices()) == list(original.vertices())
    for vertex in original.vertices():
        assert handle.graph.keywords(vertex) == original.keywords(vertex)
        for neighbor in original.neighbors(vertex):
            assert handle.graph.probability(vertex, neighbor) == original.probability(
                vertex, neighbor
            )

    # Index records: the serialized dict form is canonical — equal dicts
    # means bit-identical bitvectors, supports, score bounds and trussness.
    assert precomputed_to_dict(handle.index.precomputed) == precomputed_to_dict(
        store_engine.index.precomputed
    )
    assert handle.index.describe() == store_engine.index.describe()
    assert handle.config == store_engine.config


def test_csr_views_are_zero_copy(packed_store):
    handle = open_store(packed_store, mmap=True)
    raw_buffer = handle._raw.buffer
    assert handle.csr.indptr.obj is raw_buffer.obj
    assert handle.csr.indices.obj is raw_buffer.obj


def test_verify_store_summarises(store_engine, packed_store):
    report = verify_store(packed_store)
    assert report["ok"] is True
    assert report["num_vertices"] == store_engine.graph.num_vertices()
    assert report["num_edges"] == store_engine.graph.num_edges()
    assert report["generation"] == 0


@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_answers_identical_to_built_engine(store_graph, store_engine, packed_store, backend):
    built = InfluentialCommunityEngine.build(
        store_graph,
        config=dataclasses.replace(store_engine.config, backend=backend),
        validate=False,
    )
    attached = InfluentialCommunityEngine.from_store(
        packed_store, config_overrides={"backend": backend}
    )
    topl_built = built.topl(TOPL)
    assert len(topl_built.communities) > 0  # a real, non-degenerate workload
    assert _fingerprint(topl_built) == _fingerprint(attached.topl(TOPL))
    assert _fingerprint(built.dtopl(DTOPL)) == _fingerprint(attached.dtopl(DTOPL))


def test_repack_from_store_backed_engine(packed_store, tmp_path):
    """A store-backed engine can re-pack (memoryview buffers, not arrays)."""
    attached = InfluentialCommunityEngine.from_store(packed_store)
    repacked = tmp_path / "repacked.repro-store"
    pack_store(attached, str(repacked), generation=1)
    again = open_store(str(repacked))
    assert again.info["generation"] == 1
    assert precomputed_to_dict(again.index.precomputed) == precomputed_to_dict(
        attached.index.precomputed
    )


def test_structurally_valid_but_incomplete_store_is_typed(tmp_path):
    """A well-formed container missing the arena sections is still typed."""
    path = tmp_path / "hollow.repro-store"
    write_container(str(path), [("meta", b"{}")])
    with pytest.raises(StoreFormatError):
        open_store(str(path))


def test_malformed_meta_is_typed(tmp_path):
    path = tmp_path / "weird.repro-store"
    write_container(str(path), [("meta", b'{"num_vertices": "not-a-number"}')])
    with pytest.raises(StoreFormatError):
        open_store(str(path))
