"""Engine-level store behaviour: provenance, attach/dirty, checkpoints."""

from __future__ import annotations

import pytest

from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.exceptions import QueryParameterError
from repro.query.params import make_topl_query
from repro.store import open_store


TOPL = make_topl_query({"movies"}, k=3, radius=2, theta=0.1, top_l=3)


def _fingerprint(result):
    return tuple(
        (community.vertices, round(community.score, 12)) for community in result
    )


def test_provenance_of_built_engine(store_engine):
    assert store_engine.store_provenance() == {"store_backed": False}
    assert store_engine.describe()["store"] == {"store_backed": False}
    assert store_engine.store_attachment() is None


def test_provenance_of_store_backed_engine(packed_store):
    engine = InfluentialCommunityEngine.from_store(packed_store)
    provenance = engine.store_provenance()
    assert provenance["store_backed"] is True
    assert provenance["path"] == packed_store
    assert provenance["format_version"] == 1
    assert provenance["residency"] == "mmap"
    assert provenance["generation"] == 0
    assert provenance["attached"] is True
    assert provenance["file_size"] > 0
    assert engine.describe()["store"] == provenance
    assert engine.store_attachment() == {"store_path": packed_store}


def test_heap_residency(packed_store):
    engine = InfluentialCommunityEngine.from_store(packed_store, mmap=False)
    assert engine.store_provenance()["residency"] == "heap"


@pytest.mark.parametrize(
    "overrides",
    [
        {"max_radius": 1},
        {"thresholds": (0.5,)},
        {"num_bits": 32},
    ],
)
def test_shape_overrides_rejected(packed_store, overrides):
    """The packed records bake in the shape parameters — overriding them lies."""
    with pytest.raises(QueryParameterError, match="re-pack"):
        InfluentialCommunityEngine.from_store(packed_store, config_overrides=overrides)


def test_backend_override_allowed(packed_store):
    engine = InfluentialCommunityEngine.from_store(
        packed_store, config_overrides={"backend": "fast"}
    )
    assert engine.config.backend == "fast"
    # The fast backend never pays a freeze: the CSR is the store's own.
    assert engine.frozen_graph() is engine._store_handle.csr


def test_update_detaches_the_store(packed_store):
    engine = InfluentialCommunityEngine.from_store(packed_store)
    batch = UpdateBatch(
        [EdgeUpdate.insert(0, 900, 0.9, 0.9, keywords_v={"movies"})]
    )
    engine.apply_updates(batch, damage_threshold=1.0)
    assert engine.epoch == 1
    provenance = engine.store_provenance()
    assert provenance["store_backed"] is True  # origin is still the store...
    assert provenance["attached"] is False  # ...but workers must not attach
    assert engine.store_attachment() is None


def test_checkpoint_reanchors_the_attachment(packed_store, tmp_path):
    engine = InfluentialCommunityEngine.from_store(packed_store)
    batch = UpdateBatch(
        [EdgeUpdate.insert(0, 900, 0.9, 0.9, keywords_v={"movies"})]
    )
    engine.apply_updates(batch, damage_threshold=1.0)
    assert engine.store_attachment() is None

    checkpoint = tmp_path / "gen1.repro-store"
    info = engine.checkpoint_store(str(checkpoint))
    assert info["generation"] == 1
    assert engine.store_attachment() == {"store_path": str(checkpoint)}
    assert engine.store_provenance()["generation"] == 1

    # The checkpoint captures the post-update state: a fresh attach answers
    # like the updated engine, including the inserted vertex.
    attached = InfluentialCommunityEngine.from_store(str(checkpoint))
    assert 900 in set(attached.graph.vertices())
    assert _fingerprint(attached.topl(TOPL)) == _fingerprint(engine.topl(TOPL))


def test_dynamic_updates_on_store_backed_fast_engine(store_graph_factory, packed_store):
    """DeltaCSR layers over the store-backed frozen core unchanged."""
    attached = InfluentialCommunityEngine.from_store(
        packed_store, config_overrides={"backend": "fast"}
    )
    rebuilt = InfluentialCommunityEngine.build(
        store_graph_factory(), config=attached.config, validate=False
    )
    batch = UpdateBatch(
        [EdgeUpdate.insert(1, 901, 0.8, 0.8, keywords_v={"movies"})]
    )
    report = attached.apply_updates(batch, damage_threshold=1.0)
    rebuilt.apply_updates(batch, damage_threshold=1.0)
    assert report.epoch == 1
    assert _fingerprint(attached.topl(TOPL)) == _fingerprint(rebuilt.topl(TOPL))


def test_checkpoint_generation_chain(packed_store, tmp_path):
    engine = InfluentialCommunityEngine.from_store(packed_store)
    first = tmp_path / "gen1.repro-store"
    second = tmp_path / "gen2.repro-store"
    assert engine.checkpoint_store(str(first))["generation"] == 1
    assert engine.checkpoint_store(str(second))["generation"] == 2
    assert open_store(str(second)).info["generation"] == 2
