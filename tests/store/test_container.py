"""Container-format tests: layout round trip + the corruption matrix.

Every way a store file can be structurally unusable must surface as the
typed :class:`~repro.exceptions.StoreFormatError` (wire code
``STORE_FORMAT_INVALID``) — never as a struct unpack crash, a KeyError, or
silently garbled buffers.
"""

from __future__ import annotations

import struct

import pytest

from repro.exceptions import StoreFormatError
from repro.service.errors import error_code_for
from repro.store.container import (
    ALIGNMENT,
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    RawStore,
    inspect_store,
    write_container,
)


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "basic.repro-store"
    write_container(
        str(path),
        [
            ("meta", b'{"kind": "test"}'),
            ("numbers", struct.pack("<4q", 1, -2, 3, -4)),
            ("floats", struct.pack("<2d", 0.5, -1.25)),
        ],
    )
    return path


def _corrupt(path, offset: int, value: bytes):
    data = bytearray(path.read_bytes())
    data[offset : offset + len(value)] = value
    path.write_bytes(bytes(data))


# --------------------------------------------------------------------------- #
# the happy path
# --------------------------------------------------------------------------- #
def test_round_trip_sections(store_path):
    for use_mmap, residency in ((True, "mmap"), (False, "heap")):
        raw = RawStore.open(store_path, use_mmap=use_mmap)
        assert raw.residency == residency
        assert raw.format_version == FORMAT_VERSION
        assert sorted(raw.sections) == ["floats", "meta", "numbers"]
        assert bytes(raw.section("meta")) == b'{"kind": "test"}'
        assert raw.json_section("meta") == {"kind": "test"}
        assert raw.typed_section("numbers", "q", 4).tolist() == [1, -2, 3, -4]
        assert raw.typed_section("floats", "d", 2).tolist() == [0.5, -1.25]


def test_sections_are_aligned(store_path):
    raw = RawStore.open(store_path, use_mmap=False)
    for name, (offset, _, _) in raw.sections.items():
        assert offset % ALIGNMENT == 0, name


def test_zero_copy_views(store_path):
    """Section views share the single mmap buffer — no payload copies."""
    raw = RawStore.open(store_path, use_mmap=True)
    view = raw.section("numbers")
    assert view.obj is raw.buffer.obj


def test_inspect_store(store_path):
    report = inspect_store(store_path)
    assert report["format_version"] == FORMAT_VERSION
    assert report["file_size"] == store_path.stat().st_size
    assert {entry["name"] for entry in report["sections"]} == {
        "meta",
        "numbers",
        "floats",
    }
    assert report["meta"] == {"kind": "test"}


def test_writer_rejects_duplicate_names(tmp_path):
    with pytest.raises(StoreFormatError, match="duplicate"):
        write_container(str(tmp_path / "dup"), [("a", b"x"), ("a", b"y")])


def test_writer_rejects_bad_names(tmp_path):
    with pytest.raises(StoreFormatError, match="1..16 ASCII"):
        write_container(str(tmp_path / "bad"), [("a" * 17, b"x")])


# --------------------------------------------------------------------------- #
# the corruption matrix
# --------------------------------------------------------------------------- #
def test_missing_file_is_typed(tmp_path):
    with pytest.raises(StoreFormatError, match="not found"):
        RawStore.open(tmp_path / "absent.repro-store")


def test_truncated_below_header(store_path):
    store_path.write_bytes(store_path.read_bytes()[: HEADER_SIZE - 5])
    with pytest.raises(StoreFormatError, match="truncated"):
        RawStore.open(store_path)


def test_truncated_payload(store_path):
    data = store_path.read_bytes()
    store_path.write_bytes(data[: len(data) - 8])
    with pytest.raises(StoreFormatError, match="truncated or trailing garbage"):
        RawStore.open(store_path)


def test_trailing_garbage(store_path):
    store_path.write_bytes(store_path.read_bytes() + b"\x00garbage")
    with pytest.raises(StoreFormatError, match="truncated or trailing garbage"):
        RawStore.open(store_path)


def test_bad_magic(store_path):
    _corrupt(store_path, 0, b"NOTASTOR")
    with pytest.raises(StoreFormatError, match="not a repro store"):
        RawStore.open(store_path)


def test_unsupported_version(store_path):
    _corrupt(store_path, len(MAGIC), struct.pack("<I", FORMAT_VERSION + 9))
    with pytest.raises(StoreFormatError, match="unsupported store format version"):
        RawStore.open(store_path)


def test_implausible_section_count(store_path):
    # Patch section_count; total_size still matches, so the count check and
    # the table-overrun check are what must catch this.
    _corrupt(store_path, 24, struct.pack("<I", 2_000_000_000))
    with pytest.raises(StoreFormatError, match="implausible|overruns"):
        RawStore.open(store_path)


def test_flipped_checksum_byte(store_path):
    raw = RawStore.open(store_path, use_mmap=False)
    offset, _, _ = raw.sections["numbers"]
    data = bytearray(store_path.read_bytes())
    data[offset] ^= 0xFF
    store_path.write_bytes(bytes(data))
    with pytest.raises(StoreFormatError, match="checksum mismatch"):
        RawStore.open(store_path)
    # Disabling verification defers the problem (the structural parse still
    # runs); the caller opted out of the integrity gate.
    assert RawStore.open(store_path, verify=False).sections


def test_section_offset_out_of_bounds(store_path):
    # First TOC entry's offset: header + 16-byte name.
    _corrupt(
        store_path, HEADER_SIZE + 16, struct.pack("<Q", store_path.stat().st_size)
    )
    with pytest.raises(StoreFormatError, match="outside the file"):
        RawStore.open(store_path)


def test_missing_section_is_typed(store_path):
    raw = RawStore.open(store_path, use_mmap=False)
    with pytest.raises(StoreFormatError, match="no section"):
        raw.section("absent")


def test_typed_section_length_mismatch(store_path):
    raw = RawStore.open(store_path, use_mmap=False)
    with pytest.raises(StoreFormatError, match="expected"):
        raw.typed_section("numbers", "q", 5)


def test_json_section_invalid(store_path):
    raw = RawStore.open(store_path, use_mmap=False)
    with pytest.raises(StoreFormatError, match="not valid JSON"):
        raw.json_section("numbers")


def test_store_errors_carry_the_wire_code(store_path):
    """Every container failure maps to STORE_FORMAT_INVALID on the wire."""
    _corrupt(store_path, 0, b"NOTASTOR")
    with pytest.raises(StoreFormatError) as excinfo:
        RawStore.open(store_path)
    assert error_code_for(excinfo.value) == "STORE_FORMAT_INVALID"
