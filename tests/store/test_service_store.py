"""Service + serving wiring of the store: build-from-path, flat worker attach."""

from __future__ import annotations

import pytest

from repro.core.engine import InfluentialCommunityEngine
from repro.exceptions import MalformedRequestError
from repro.graph.social_network import SocialNetwork
from repro.query.params import make_topl_query
from repro.serve import batch as batch_mod
from repro.service.facade import CommunityService
from repro.service.schema import BuildRequest, ToplRequest
from repro.service.sharded.pool import _engine_from_payload, _worker_payload


TOPL = make_topl_query({"movies"}, k=3, radius=2, theta=0.1, top_l=3)


def _fingerprint(result):
    return tuple(
        (community.vertices, round(community.score, 12)) for community in result
    )


# --------------------------------------------------------------------------- #
# BuildRequest validation
# --------------------------------------------------------------------------- #
class TestBuildRequestValidation:
    def test_no_source_rejected(self):
        with pytest.raises(MalformedRequestError, match="exactly one"):
            BuildRequest(session="s")

    def test_two_sources_rejected(self, packed_store):
        with pytest.raises(MalformedRequestError, match="exactly one"):
            BuildRequest(
                session="s", graph_path="graph.json", store_path=packed_store
            )

    def test_store_path_with_index_path_rejected(self, packed_store):
        with pytest.raises(MalformedRequestError, match="carries its own index"):
            BuildRequest(
                session="s", store_path=packed_store, index_path="index.json"
            )


# --------------------------------------------------------------------------- #
# facade: build a session straight from a store file
# --------------------------------------------------------------------------- #
class TestFacadeStoreBuild:
    def test_build_from_store_path(self, store_engine, packed_store):
        service = CommunityService()
        response = service.build(BuildRequest(session="cold", store_path=packed_store))
        assert response.epoch == 0
        store_block = response.engine["store"]
        assert store_block["store_backed"] is True
        assert store_block["attached"] is True
        assert store_block["residency"] == "mmap"

        served = service.topl(ToplRequest(query=TOPL, session="cold"))
        assert _fingerprint(served.communities) == _fingerprint(store_engine.topl(TOPL))

    def test_health_reports_store_provenance(self, packed_store):
        service = CommunityService()
        service.build(BuildRequest(session="cold", store_path=packed_store))
        (info,) = service.health().to_json()["sessions"]
        assert info["engine"]["store"]["store_backed"] is True
        assert info["engine"]["store"]["path"] == packed_store

    def test_backend_override_through_config(self, packed_store):
        service = CommunityService()
        response = service.build(
            BuildRequest(
                session="cold", store_path=packed_store, config={"backend": "fast"}
            )
        )
        assert response.engine["backend"] == "fast"

    def test_unknown_config_key_rejected(self, packed_store):
        service = CommunityService()
        with pytest.raises(MalformedRequestError):
            service.build(
                BuildRequest(
                    session="cold",
                    store_path=packed_store,
                    config={"warp_factor": 9},
                )
            )

    def test_missing_store_file_is_typed(self, tmp_path):
        from repro.exceptions import StoreFormatError

        service = CommunityService()
        with pytest.raises(StoreFormatError):
            service.build(
                BuildRequest(session="cold", store_path=str(tmp_path / "absent"))
            )


# --------------------------------------------------------------------------- #
# spawn workers: attach, don't rebuild
# --------------------------------------------------------------------------- #
class TestSpawnWorkerAttach:
    @pytest.fixture
    def counters(self, monkeypatch):
        """Count the two rebuild costs a store attach must never pay."""
        calls = {"freeze": 0, "graph_from_dict": 0}
        original_freeze = SocialNetwork.freeze

        def counting_freeze(self):
            calls["freeze"] += 1
            return original_freeze(self)

        def counting_graph_from_dict(document):
            calls["graph_from_dict"] += 1
            raise AssertionError("store-attached worker deserialized a graph")

        monkeypatch.setattr(SocialNetwork, "freeze", counting_freeze)
        monkeypatch.setattr(batch_mod, "graph_from_dict", counting_graph_from_dict)
        return calls

    @pytest.fixture(autouse=True)
    def reset_worker_globals(self):
        yield
        batch_mod._WORKER_PROCESSORS = None
        batch_mod._WORKER_STORE_HANDLE = None

    def test_payload_ships_only_the_store_path(self, packed_store):
        engine = InfluentialCommunityEngine.from_store(packed_store)
        serving = engine.serve(result_cache_capacity=0, start_method="spawn")
        payload = serving._worker_payload()
        assert payload["store_path"] == packed_store
        assert "graph" not in payload and "precomputed" not in payload

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_worker_startup_is_flat(self, packed_store, counters, backend):
        """`_worker_init_rebuild` on a store payload neither freezes nor parses.

        This is the flat-startup property: attach cost is the mmap open, not
        a function of the graph size.  Run in-process so the counters see it.
        """
        engine = InfluentialCommunityEngine.from_store(
            packed_store, config_overrides={"backend": backend}
        )
        payload = engine.serve(
            result_cache_capacity=0, start_method="spawn"
        )._worker_payload()
        batch_mod._worker_init_rebuild(payload)
        assert counters == {"freeze": 0, "graph_from_dict": 0}
        assert batch_mod._WORKER_STORE_HANDLE is not None

        position, result = batch_mod._worker_answer((0, TOPL))
        assert position == 0
        assert _fingerprint(result) == _fingerprint(engine.topl(TOPL))

    @pytest.mark.slow
    def test_spawn_batch_equals_sequential(self, packed_store):
        engine = InfluentialCommunityEngine.from_store(packed_store)
        queries = [
            make_topl_query({"movies"}, k=3, radius=2, theta=0.1, top_l=3),
            make_topl_query({"books"}, k=3, radius=2, theta=0.1, top_l=2),
            make_topl_query({"movies", "books"}, k=3, radius=1, theta=0.2, top_l=3),
        ]
        sequential = engine.serve(result_cache_capacity=0).run(queries)
        spawned = engine.serve(result_cache_capacity=0, start_method="spawn").run(
            queries, workers=2
        )
        assert [_fingerprint(r) for r in sequential.results] == [
            _fingerprint(r) for r in spawned.results
        ]


# --------------------------------------------------------------------------- #
# sharded pool: replicas attach through the same path
# --------------------------------------------------------------------------- #
class TestShardedPoolAttach:
    def test_payload_and_rebuild_round_trip(self, packed_store):
        engine = InfluentialCommunityEngine.from_store(packed_store)
        payload = _worker_payload(engine, shard=0, num_shards=1)
        assert payload["store_path"] == packed_store
        assert "graph" not in payload

        replica = _engine_from_payload(payload)
        assert replica.epoch == engine.epoch
        assert _fingerprint(replica.topl(TOPL)) == _fingerprint(engine.topl(TOPL))

    def test_dirty_engine_falls_back_to_serialized_payload(self, packed_store):
        from repro.dynamic.updates import EdgeUpdate, UpdateBatch

        engine = InfluentialCommunityEngine.from_store(packed_store)
        engine.apply_updates(
            UpdateBatch([EdgeUpdate.insert(0, 902, 0.9, 0.9, keywords_v={"movies"})]),
            damage_threshold=1.0,
        )
        payload = _worker_payload(engine, shard=0, num_shards=1)
        assert "store_path" not in payload
        assert "graph" in payload
        replica = _engine_from_payload(payload)
        assert _fingerprint(replica.topl(TOPL)) == _fingerprint(engine.topl(TOPL))
