"""End-to-end integration tests across the full pipeline.

These exercise the same path a downstream user would: generate / load a
dataset, build the engine (offline phase), persist and reload the index, and
run both query types — verifying cross-module consistency rather than any one
component.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.graph.datasets import load_dataset
from repro.graph.io import load_graph_json, save_graph_json
from repro.pruning.stats import ABLATION_CONFIGS
from repro.query.baselines.atindex import atindex_topl
from repro.query.baselines.bruteforce import bruteforce_topl
from repro.workloads.queries import QueryWorkload
from repro.workloads.runner import ExperimentRunner
from repro.workloads.sweeps import PAPER_PARAMETER_GRID


@pytest.fixture(scope="module", params=["uni", "dblp"])
def dataset_engine(request):
    graph = load_dataset(request.param, num_vertices=150, rng=13)
    engine = InfluentialCommunityEngine.build(
        graph, config=EngineConfig(max_radius=2), validate=True
    )
    return graph, engine


class TestFullPipeline:
    def test_offline_then_online(self, dataset_engine):
        graph, engine = dataset_engine
        workload = QueryWorkload(graph, rng=5)
        query = workload.topl_query(num_keywords=5, k=3, radius=2, theta=0.2, top_l=3)
        result = engine.topl(query)
        assert len(result) <= 3
        for community in result:
            assert community.vertices <= frozenset(graph.vertices())

    def test_all_methods_agree_on_answers(self, dataset_engine):
        graph, engine = dataset_engine
        workload = QueryWorkload(graph, rng=6)
        query = workload.topl_query(num_keywords=5, k=3, radius=2, theta=0.2, top_l=3)
        ours = engine.topl(query)
        brute = bruteforce_topl(graph, query)
        at_index = atindex_topl(graph, query)
        assert list(ours.scores) == pytest.approx(list(brute.scores))
        assert list(at_index.scores) == pytest.approx(list(brute.scores))

    def test_ablation_configurations_preserve_answers(self, dataset_engine):
        graph, engine = dataset_engine
        workload = QueryWorkload(graph, rng=7)
        query = workload.topl_query(num_keywords=5, k=3, radius=2, theta=0.2, top_l=3)
        reference = list(engine.topl(query).scores)
        for config in ABLATION_CONFIGS:
            assert list(engine.topl(query, pruning=config).scores) == pytest.approx(reference)

    def test_graph_and_index_survive_disk_round_trip(self, tmp_path, dataset_engine):
        graph, engine = dataset_engine
        graph_path = tmp_path / "graph.json"
        index_path = tmp_path / "index.json"
        save_graph_json(graph, graph_path)
        engine.save_index(index_path)

        reloaded_graph = load_graph_json(graph_path)
        reloaded_engine = InfluentialCommunityEngine.from_saved_index(
            reloaded_graph, index_path
        )
        workload = QueryWorkload(reloaded_graph, rng=8)
        query = workload.topl_query(num_keywords=4, k=3, radius=2, theta=0.2, top_l=2)
        original = engine.topl(query)
        recovered = reloaded_engine.topl(query)
        assert list(original.scores) == pytest.approx(list(recovered.scores))

    def test_dtopl_uses_topl_candidates(self, dataset_engine):
        graph, engine = dataset_engine
        workload = QueryWorkload(graph, rng=9)
        query = workload.dtopl_query(num_keywords=5, k=3, radius=2, theta=0.2, top_l=2, candidate_factor=3)
        topl_result = engine.topl(query.candidate_query())
        dtopl_result = engine.dtopl(query)
        topl_sets = {community.vertices for community in topl_result}
        assert all(community.vertices in topl_sets for community in dtopl_result)


class TestRunnerIntegration:
    def test_theta_sweep_produces_rows(self):
        runner = ExperimentRunner(
            grid=PAPER_PARAMETER_GRID.scaled(0.004),
            config=EngineConfig(max_radius=2),
            rng_seed=3,
        )
        graph = runner.synthetic_graph("zipf", num_vertices=100)
        workload = runner.workload_for(graph)
        rows = []
        for setting in runner.grid.sweep("theta"):
            query = workload.topl_query(
                num_keywords=setting["num_query_keywords"],
                k=3,
                radius=2,
                theta=setting["theta"],
                top_l=setting["top_l"],
            )
            rows.append(runner.measure_topl(graph, query).row())
        assert len(rows) == 3
        assert all(row["wall_clock_s"] > 0 for row in rows)
