"""Integration test modelled on the paper's running example (Figure 1).

The figure shows a small social network of eleven users with shopping-interest
keyword sets; a dense "Movies" seed community with high influence on the rest
of the network, and a second, less-overlapping community that DTop2-ICDE
prefers for diversified promotion.  The exact edge list is not given in the
paper, so this scenario builds an equivalent instance: two dense keyword-
homogeneous communities whose influenced regions overlap, plus peripheral
users that are reached only through propagation.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.graph.social_network import SocialNetwork
from repro.query.params import make_dtopl_query, make_topl_query


def build_marketing_network() -> SocialNetwork:
    """Two movie-loving cliques and a jewellery clique with peripheral users."""
    graph = SocialNetwork(name="figure1-like")
    movie_clique_a = [1, 2, 3, 4]          # dense, near the periphery
    movie_clique_b = [5, 6, 7, 8]          # dense, farther from the periphery
    jewelry_clique = [9, 10, 11]           # small, low influence
    periphery = list(range(12, 22))        # influenced users

    for vertex in movie_clique_a + movie_clique_b:
        graph.add_vertex(vertex, {"movies", "books"})
    for vertex in jewelry_clique:
        graph.add_vertex(vertex, {"jewelry"})
    for vertex in periphery:
        graph.add_vertex(vertex, {"cosmetics"})

    def connect_clique(members, probability):
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                graph.add_edge(u, v, probability)

    connect_clique(movie_clique_a, 0.8)
    connect_clique(movie_clique_b, 0.8)
    connect_clique(jewelry_clique, 0.7)

    # Clique A reaches the periphery strongly; clique B reaches it weakly.
    for offset, vertex in enumerate(periphery):
        graph.add_edge(1, vertex, 0.8 if offset < 6 else 0.6)
    graph.add_edge(5, periphery[0], 0.6)
    graph.add_edge(5, periphery[1], 0.6)
    # The jewellery clique has a single weak link outward.
    graph.add_edge(9, periphery[2], 0.5)
    # Bridges so the network is connected.
    graph.add_edge(4, 5, 0.6)
    graph.add_edge(8, 9, 0.5)
    return graph


@pytest.fixture(scope="module")
def marketing_engine():
    graph = build_marketing_network()
    return InfluentialCommunityEngine.build(graph, config=EngineConfig(max_radius=2))


class TestTopLScenario:
    def test_movie_communities_found_for_movie_query(self, marketing_engine):
        query = make_topl_query({"movies"}, k=4, radius=1, theta=0.1, top_l=2)
        result = marketing_engine.topl(query)
        assert len(result) == 2
        found = {community.vertices for community in result}
        assert frozenset({1, 2, 3, 4}) in found
        assert frozenset({5, 6, 7, 8}) in found

    def test_best_community_is_the_one_reaching_the_periphery(self, marketing_engine):
        query = make_topl_query({"movies"}, k=4, radius=1, theta=0.1, top_l=2)
        result = marketing_engine.topl(query)
        assert result.best.vertices == frozenset({1, 2, 3, 4})
        assert result.scores[0] > result.scores[1]

    def test_influenced_community_larger_than_seed(self, marketing_engine):
        query = make_topl_query({"movies"}, k=4, radius=1, theta=0.1, top_l=1)
        best = marketing_engine.topl(query).best
        assert best.num_influenced > len(best)
        assert best.num_influenced_outside >= 6

    def test_jewelry_query_finds_jewelry_community(self, marketing_engine):
        query = make_topl_query({"jewelry"}, k=3, radius=1, theta=0.1, top_l=1)
        result = marketing_engine.topl(query)
        assert len(result) == 1
        assert result.best.vertices == frozenset({9, 10, 11})

    def test_keyword_mismatch_returns_nothing(self, marketing_engine):
        query = make_topl_query({"gardening"}, k=3, radius=1, theta=0.1, top_l=3)
        assert len(marketing_engine.topl(query)) == 0

    def test_topl_vs_kcore_case_study_shape(self, marketing_engine):
        """Figure 5 shape: the TopL community influences at least as many users."""
        query = make_topl_query({"movies"}, k=4, radius=1, theta=0.1, top_l=1)
        best = marketing_engine.topl(query).best
        comparison = marketing_engine.kcore_comparison(best, k=4)
        assert (
            comparison["topl_icde"]["influenced_users"]
            >= comparison["kcore"]["influenced_users"]
        )


class TestDTopLScenario:
    def test_diversified_selection_avoids_overlap(self, marketing_engine):
        """DTop2-ICDE prefers the two movie cliques over near-duplicates."""
        query = make_dtopl_query(
            {"movies", "jewelry"}, k=3, radius=1, theta=0.1, top_l=2, candidate_factor=3
        )
        result = marketing_engine.dtopl(query)
        assert len(result) == 2
        picked = {community.vertices for community in result}
        # The top-influence community is always selected first.
        assert frozenset({1, 2, 3, 4}) in picked

    def test_diversity_score_not_less_than_best_single(self, marketing_engine):
        topl_query = make_topl_query({"movies", "jewelry"}, k=3, radius=1, theta=0.1, top_l=1)
        best_single = marketing_engine.topl(topl_query).best.score
        dtopl_query = make_dtopl_query(
            {"movies", "jewelry"}, k=3, radius=1, theta=0.1, top_l=2, candidate_factor=3
        )
        result = marketing_engine.dtopl(dtopl_query)
        assert result.diversity_score >= best_single - 1e-9
