"""Unit tests for the truss decomposition."""

from repro.graph.generators import complete_graph
from repro.graph.social_network import SocialNetwork
from repro.truss.decomposition import truss_decomposition
from repro.truss.ktruss import maximal_ktruss


class TestTrussDecomposition:
    def test_clique_trussness(self, clique5):
        decomposition = truss_decomposition(clique5)
        assert all(value == 5 for value in decomposition.edge_trussness.values())
        assert decomposition.max_trussness() == 5
        assert all(
            decomposition.trussness_of_vertex(v) == 5 for v in clique5.vertices()
        )

    def test_triangle_with_pendant(self, triangle_graph):
        decomposition = truss_decomposition(triangle_graph)
        assert decomposition.trussness_of_edge("a", "b") == 3
        assert decomposition.trussness_of_edge("c", "d") == 2
        assert decomposition.trussness_of_vertex("c") == 3
        assert decomposition.trussness_of_vertex("d") == 2

    def test_missing_edge_defaults_to_two(self, triangle_graph):
        decomposition = truss_decomposition(triangle_graph)
        assert decomposition.trussness_of_edge("a", "d") == 2
        assert decomposition.trussness_of_vertex("zzz") == 2

    def test_isolated_vertex_gets_minimum(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.5)
        graph.add_vertex(3)
        decomposition = truss_decomposition(graph)
        assert decomposition.trussness_of_vertex(3) == 2

    def test_two_cliques(self, two_cliques_bridge):
        decomposition = truss_decomposition(two_cliques_bridge)
        assert decomposition.trussness_of_edge(0, 1) == 4
        assert decomposition.trussness_of_edge(3, 4) == 2
        assert decomposition.vertices_with_trussness_at_least(4) == (
            frozenset(range(4)) | frozenset(range(6, 10))
        )

    def test_empty_graph(self):
        decomposition = truss_decomposition(SocialNetwork())
        assert decomposition.max_trussness() == 2
        assert decomposition.edge_trussness == {}

    def test_consistency_with_maximal_ktruss(self, two_cliques_bridge):
        """Edge trussness k means the edge survives in the maximal k-truss but not (k+1)."""
        decomposition = truss_decomposition(two_cliques_bridge)
        for k in (3, 4):
            truss_edges = maximal_ktruss(two_cliques_bridge, k).edges
            from_decomposition = {
                key for key, value in decomposition.edge_trussness.items() if value >= k
            }
            assert truss_edges == from_decomposition

    def test_consistency_on_random_graph(self):
        from repro.graph.generators import erdos_renyi_graph

        graph = erdos_renyi_graph(40, 0.2, rng=11)
        decomposition = truss_decomposition(graph)
        for k in (3, 4, 5):
            truss_edges = maximal_ktruss(graph, k).edges
            from_decomposition = {
                key for key, value in decomposition.edge_trussness.items() if value >= k
            }
            assert truss_edges == from_decomposition

    def test_larger_clique(self):
        graph = complete_graph(7, rng=1)
        decomposition = truss_decomposition(graph)
        assert decomposition.max_trussness() == 7
        assert decomposition.trussness_of_edge(0, 1) == 7
