"""Unit tests for edge support computation."""

from repro.graph.generators import complete_graph
from repro.graph.social_network import SocialNetwork
from repro.graph.subgraph import SubgraphView
from repro.truss.support import (
    edge_key,
    edge_support,
    max_support,
    satisfies_truss_support,
    support_of_edge,
    support_upper_bounds,
    triangles_per_edge_histogram,
)


class TestEdgeSupport:
    def test_triangle_edge_supports(self, triangle_graph):
        supports = edge_support(triangle_graph)
        assert supports[edge_key("a", "b")] == 1
        assert supports[edge_key("b", "c")] == 1
        assert supports[edge_key("a", "c")] == 1
        assert supports[edge_key("c", "d")] == 0

    def test_complete_graph_supports(self):
        graph = complete_graph(5, rng=1)
        supports = edge_support(graph)
        # Every edge of K5 is in 3 triangles.
        assert all(value == 3 for value in supports.values())

    def test_support_in_subgraph_view(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "d"})
        supports = edge_support(view)
        assert supports[edge_key("a", "b")] == 0

    def test_support_of_single_edge(self, triangle_graph):
        assert support_of_edge(triangle_graph, "a", "b") == 1
        assert support_of_edge(triangle_graph, "c", "d") == 0

    def test_max_support(self, triangle_graph):
        assert max_support(triangle_graph) == 1
        assert max_support(SocialNetwork()) == 0

    def test_supports_monotone_under_restriction(self, two_cliques_bridge):
        # Support measured in a subview never exceeds the full-graph support.
        full = edge_support(two_cliques_bridge)
        view = SubgraphView(two_cliques_bridge, {0, 1, 2, 4, 5})
        partial = edge_support(view)
        for key, value in partial.items():
            assert value <= full[key]


class TestSupportBounds:
    def test_upper_bounds_full_graph(self, two_cliques_bridge):
        bounds = support_upper_bounds(two_cliques_bridge)
        assert bounds[edge_key(0, 1)] == 2  # inside a 4-clique
        assert bounds[edge_key(3, 4)] == 0  # bridge edge

    def test_upper_bounds_restricted(self, two_cliques_bridge):
        bounds = support_upper_bounds(two_cliques_bridge, restricted_to={0, 1, 2})
        assert bounds[edge_key(0, 1)] == 1

    def test_satisfies_truss_support(self, clique5):
        assert satisfies_truss_support(clique5, 5)
        assert not satisfies_truss_support(clique5, 6)

    def test_satisfies_truss_support_k2_always(self, triangle_graph):
        assert satisfies_truss_support(triangle_graph, 2)

    def test_histogram(self, triangle_graph):
        histogram = triangles_per_edge_histogram(triangle_graph)
        assert histogram == {1: 3, 0: 1}
