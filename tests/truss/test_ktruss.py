"""Unit tests for maximal k-truss extraction."""

import pytest

from repro.exceptions import GraphError
from repro.graph.social_network import SocialNetwork
from repro.graph.subgraph import SubgraphView
from repro.truss.ktruss import (
    is_ktruss,
    ktruss_component_of,
    max_truss_parameter,
    maximal_ktruss,
)
from repro.truss.support import edge_key


class TestMaximalKTruss:
    def test_k2_keeps_every_edge(self, triangle_graph):
        result = maximal_ktruss(triangle_graph, 2)
        assert result.edges == frozenset(
            {edge_key("a", "b"), edge_key("b", "c"), edge_key("a", "c"), edge_key("c", "d")}
        )

    def test_k3_keeps_only_the_triangle(self, triangle_graph):
        result = maximal_ktruss(triangle_graph, 3)
        assert result.vertices == frozenset({"a", "b", "c"})
        assert edge_key("c", "d") not in result.edges

    def test_k4_empties_a_single_triangle(self, triangle_graph):
        result = maximal_ktruss(triangle_graph, 4)
        assert result.is_empty

    def test_clique_is_its_own_truss(self, clique5):
        result = maximal_ktruss(clique5, 5)
        assert result.vertices == frozenset(range(5))
        assert len(result.edges) == 10
        assert maximal_ktruss(clique5, 6).is_empty

    def test_two_cliques_both_survive(self, two_cliques_bridge):
        result = maximal_ktruss(two_cliques_bridge, 4)
        assert result.vertices == frozenset(range(4)) | frozenset(range(6, 10))
        # bridge vertices do not participate in any 4-truss
        assert 4 not in result.vertices
        assert 5 not in result.vertices

    def test_peeling_cascades(self):
        # A triangle with a pendant triangle sharing one edge: removing the
        # weak part cascades correctly.
        graph = SocialNetwork()
        edges = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)]
        for u, v in edges:
            graph.add_edge(u, v, 0.5)
        result = maximal_ktruss(graph, 3)
        assert result.vertices == frozenset({1, 2, 3, 4, 5})
        result4 = maximal_ktruss(graph, 4)
        assert result4.is_empty

    def test_invalid_k_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            maximal_ktruss(triangle_graph, 1)

    def test_works_on_subgraph_view(self, two_cliques_bridge):
        view = SubgraphView(two_cliques_bridge, set(range(6)))
        result = maximal_ktruss(view, 4)
        assert result.vertices == frozenset(range(4))

    def test_truss_result_contains_vertex(self, triangle_graph):
        result = maximal_ktruss(triangle_graph, 3)
        assert result.contains_vertex("a")
        assert not result.contains_vertex("d")


class TestComponentOf:
    def test_component_of_center(self, two_cliques_bridge):
        component = ktruss_component_of(two_cliques_bridge, 4, 0)
        assert component == frozenset(range(4))

    def test_component_excludes_other_clique(self, two_cliques_bridge):
        component = ktruss_component_of(two_cliques_bridge, 3, 7)
        assert component == frozenset(range(6, 10))

    def test_center_not_in_truss_gives_empty(self, two_cliques_bridge):
        assert ktruss_component_of(two_cliques_bridge, 4, 4) == frozenset()

    def test_component_on_view(self, two_cliques_bridge):
        view = SubgraphView(two_cliques_bridge, set(range(10)))
        assert ktruss_component_of(view, 4, 9) == frozenset(range(6, 10))


class TestIsKTruss:
    def test_clique_is_ktruss(self, clique5):
        assert is_ktruss(clique5, 5)
        assert is_ktruss(clique5, 3)
        assert not is_ktruss(clique5, 6)

    def test_triangle_with_pendant_is_not_3truss(self, triangle_graph):
        assert not is_ktruss(triangle_graph, 3)

    def test_disconnected_graph_fails_when_required(self, two_cliques_bridge):
        view = SubgraphView(two_cliques_bridge, set(range(4)) | set(range(6, 10)))
        assert not is_ktruss(view, 4, require_connected=True)
        assert is_ktruss(view, 4, require_connected=False)

    def test_empty_graph_is_trivially_truss(self):
        assert is_ktruss(SocialNetwork(), 3)

    def test_invalid_k(self, clique5):
        with pytest.raises(GraphError):
            is_ktruss(clique5, 1)


class TestMaxTrussParameter:
    def test_clique(self, clique5):
        assert max_truss_parameter(clique5) == 5

    def test_triangle_graph(self, triangle_graph):
        assert max_truss_parameter(triangle_graph) == 3

    def test_edgeless(self):
        graph = SocialNetwork()
        graph.add_vertex(1)
        assert max_truss_parameter(graph) == 2
