"""Unit tests for the k-core decomposition."""

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import complete_graph
from repro.graph.social_network import SocialNetwork
from repro.graph.subgraph import SubgraphView
from repro.truss.kcore import (
    core_decomposition,
    degeneracy,
    kcore_component_of,
    maximal_kcore,
)


class TestCoreDecomposition:
    def test_clique_core_numbers(self, clique5):
        decomposition = core_decomposition(clique5)
        assert all(decomposition.core_of(v) == 4 for v in clique5.vertices())
        assert decomposition.max_core() == 4

    def test_triangle_with_pendant(self, triangle_graph):
        decomposition = core_decomposition(triangle_graph)
        assert decomposition.core_of("a") == 2
        assert decomposition.core_of("b") == 2
        assert decomposition.core_of("c") == 2
        assert decomposition.core_of("d") == 1

    def test_path_graph_core_is_one(self):
        graph = SocialNetwork()
        for v in range(4):
            graph.add_vertex(v)
        for v in range(3):
            graph.add_edge(v, v + 1, 0.5)
        decomposition = core_decomposition(graph)
        assert all(decomposition.core_of(v) == 1 for v in range(4))

    def test_missing_vertex_core_zero(self, triangle_graph):
        assert core_decomposition(triangle_graph).core_of("zzz") == 0

    def test_empty_graph(self):
        decomposition = core_decomposition(SocialNetwork())
        assert decomposition.max_core() == 0

    def test_vertices_with_core_at_least(self, triangle_graph):
        decomposition = core_decomposition(triangle_graph)
        assert decomposition.vertices_with_core_at_least(2) == frozenset({"a", "b", "c"})

    def test_consistency_on_random_graph(self):
        """Every vertex of the k-core has degree >= k inside the k-core."""
        from repro.graph.generators import erdos_renyi_graph

        graph = erdos_renyi_graph(50, 0.15, rng=7)
        for k in (2, 3):
            core = maximal_kcore(graph, k)
            view = SubgraphView(graph, core)
            assert all(view.degree(v) >= k for v in core)


class TestMaximalKCoreAndComponents:
    def test_maximal_kcore(self, two_cliques_bridge):
        core3 = maximal_kcore(two_cliques_bridge, 3)
        assert core3 == frozenset(range(4)) | frozenset(range(6, 10))
        assert maximal_kcore(two_cliques_bridge, 2) == frozenset(range(10))

    def test_negative_k_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            maximal_kcore(triangle_graph, -1)

    def test_component_of_center(self, two_cliques_bridge):
        assert kcore_component_of(two_cliques_bridge, 3, 1) == frozenset(range(4))
        assert kcore_component_of(two_cliques_bridge, 3, 8) == frozenset(range(6, 10))

    def test_component_missing_center(self, two_cliques_bridge):
        assert kcore_component_of(two_cliques_bridge, 3, 4) == frozenset()

    def test_component_on_view(self, two_cliques_bridge):
        view = SubgraphView(two_cliques_bridge, set(range(6)))
        assert kcore_component_of(view, 3, 0) == frozenset(range(4))


class TestDegeneracy:
    def test_clique(self):
        assert degeneracy(complete_graph(6, rng=1)) == 5

    def test_two_cliques(self, two_cliques_bridge):
        assert degeneracy(two_cliques_bridge) == 3
