"""Unit tests for the SocialNetwork data model."""

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    InvalidProbabilityError,
    VertexNotFoundError,
)
from repro.graph.social_network import SocialNetwork


class TestVertexOperations:
    def test_add_vertex_with_keywords(self):
        graph = SocialNetwork()
        graph.add_vertex(1, {"movies", "books"})
        assert graph.has_vertex(1)
        assert graph.keywords(1) == frozenset({"movies", "books"})

    def test_add_vertex_twice_merges_keywords(self):
        graph = SocialNetwork()
        graph.add_vertex(1, {"movies"})
        graph.add_vertex(1, {"books"})
        assert graph.keywords(1) == frozenset({"movies", "books"})

    def test_add_vertex_without_keywords(self):
        graph = SocialNetwork()
        graph.add_vertex("u")
        assert graph.keywords("u") == frozenset()

    def test_set_keywords_replaces(self):
        graph = SocialNetwork()
        graph.add_vertex(1, {"movies"})
        graph.set_keywords(1, {"sports"})
        assert graph.keywords(1) == frozenset({"sports"})

    def test_set_keywords_missing_vertex_raises(self):
        graph = SocialNetwork()
        with pytest.raises(VertexNotFoundError):
            graph.set_keywords(42, {"movies"})

    def test_remove_vertex_removes_incident_edges(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(2, 3, 0.5)
        graph.remove_vertex(2)
        assert not graph.has_vertex(2)
        assert not graph.has_edge(1, 2)
        assert not graph.has_edge(2, 3)
        assert graph.num_edges() == 0

    def test_remove_missing_vertex_raises(self):
        graph = SocialNetwork()
        with pytest.raises(VertexNotFoundError):
            graph.remove_vertex(1)

    def test_contains_and_len(self):
        graph = SocialNetwork()
        graph.add_vertex(1)
        graph.add_vertex(2)
        assert 1 in graph
        assert 3 not in graph
        assert len(graph) == 2

    def test_keywords_missing_vertex_raises(self):
        graph = SocialNetwork()
        with pytest.raises(VertexNotFoundError):
            graph.keywords(9)


class TestEdgeOperations:
    def test_add_edge_creates_vertices(self):
        graph = SocialNetwork()
        graph.add_edge("u", "v", 0.7)
        assert graph.has_vertex("u")
        assert graph.has_vertex("v")
        assert graph.has_edge("u", "v")
        assert graph.has_edge("v", "u")

    def test_add_edge_symmetric_default_probability(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.7)
        assert graph.probability(1, 2) == pytest.approx(0.7)
        assert graph.probability(2, 1) == pytest.approx(0.7)

    def test_add_edge_asymmetric_probabilities(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.7, 0.3)
        assert graph.probability(1, 2) == pytest.approx(0.7)
        assert graph.probability(2, 1) == pytest.approx(0.3)

    def test_self_loop_rejected(self):
        graph = SocialNetwork()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1, 0.5)

    def test_invalid_probability_rejected(self):
        graph = SocialNetwork()
        with pytest.raises(InvalidProbabilityError):
            graph.add_edge(1, 2, 1.5)
        with pytest.raises(InvalidProbabilityError):
            graph.add_edge(1, 2, -0.1)

    def test_non_numeric_probability_rejected(self):
        graph = SocialNetwork()
        with pytest.raises(InvalidProbabilityError):
            graph.add_edge(1, 2, "high")

    def test_set_probability(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.5)
        graph.set_probability(1, 2, 0.9)
        assert graph.probability(1, 2) == pytest.approx(0.9)
        assert graph.probability(2, 1) == pytest.approx(0.5)

    def test_set_probability_missing_edge_raises(self):
        graph = SocialNetwork()
        graph.add_vertex(1)
        graph.add_vertex(2)
        with pytest.raises(EdgeNotFoundError):
            graph.set_probability(1, 2, 0.5)

    def test_probability_missing_edge_raises(self):
        graph = SocialNetwork()
        graph.add_vertex(1)
        graph.add_vertex(2)
        with pytest.raises(EdgeNotFoundError):
            graph.probability(1, 2)

    def test_remove_edge(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.5)
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.has_vertex(1)
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 2)

    def test_edges_reported_once(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(2, 3, 0.5)
        graph.add_edge(1, 3, 0.5)
        edges = list(graph.edges())
        assert len(edges) == 3
        as_sets = {frozenset(edge) for edge in edges}
        assert as_sets == {frozenset({1, 2}), frozenset({2, 3}), frozenset({1, 3})}

    def test_degree_and_neighbors(self, triangle_graph):
        assert triangle_graph.degree("c") == 3
        assert set(triangle_graph.neighbors("c")) == {"a", "b", "d"}
        assert triangle_graph.neighbor_set("d") == {"c"}

    def test_counts(self, triangle_graph):
        assert triangle_graph.num_vertices() == 4
        assert triangle_graph.num_edges() == 4


class TestDerivedViews:
    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.add_edge("d", "a", 0.5)
        assert not triangle_graph.has_edge("d", "a")
        assert clone.has_edge("d", "a")
        assert clone.keywords("a") == triangle_graph.keywords("a")

    def test_induced_subgraph(self, triangle_graph):
        sub = triangle_graph.induced_subgraph({"a", "b", "c"})
        assert sub.num_vertices() == 3
        assert sub.num_edges() == 3
        assert not sub.has_vertex("d")
        assert sub.probability("a", "b") == triangle_graph.probability("a", "b")

    def test_induced_subgraph_ignores_unknown_vertices(self, triangle_graph):
        sub = triangle_graph.induced_subgraph({"a", "zzz"})
        assert sub.num_vertices() == 1

    def test_connected_component(self, triangle_graph):
        assert triangle_graph.connected_component("a") == {"a", "b", "c", "d"}

    def test_connected_components_two_parts(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(3, 4, 0.5)
        graph.add_vertex(5)
        components = graph.connected_components()
        assert len(components) == 3
        assert len(components[0]) == 2

    def test_is_connected(self, triangle_graph):
        assert triangle_graph.is_connected()
        triangle_graph.add_vertex("island")
        assert not triangle_graph.is_connected()

    def test_empty_graph_is_connected(self):
        assert SocialNetwork().is_connected()

    def test_keyword_domain(self, triangle_graph):
        assert triangle_graph.keyword_domain() == frozenset({"movies", "books", "sports"})

    def test_iteration_order_is_insertion_order(self):
        graph = SocialNetwork()
        for vertex in (5, 2, 9):
            graph.add_vertex(vertex)
        assert list(graph.vertices()) == [5, 2, 9]
