"""Unit tests for keyword assignment over graphs."""

import pytest

from repro.exceptions import DatasetError
from repro.graph.generators import complete_graph, ring_lattice_graph
from repro.graph.keyword_assignment import (
    assign_keywords,
    keyword_profile,
    vertices_with_any_keyword,
)
from repro.keywords.vocabulary import ZipfKeywordDistribution, default_vocabulary


class TestAssignKeywords:
    def test_every_vertex_receives_exact_count(self):
        graph = ring_lattice_graph(40, rng=1)
        assign_keywords(graph, keywords_per_vertex=3, domain_size=20, rng=2)
        assert all(len(graph.keywords(v)) == 3 for v in graph.vertices())

    def test_count_capped_by_domain(self):
        graph = complete_graph(5, rng=1)
        assign_keywords(graph, keywords_per_vertex=10, domain_size=4, rng=2)
        assert all(len(graph.keywords(v)) == 4 for v in graph.vertices())

    def test_keywords_come_from_domain(self):
        graph = complete_graph(8, rng=1)
        vocabulary = default_vocabulary(15)
        assign_keywords(graph, keywords_per_vertex=2, vocabulary=vocabulary, rng=3)
        domain = set(vocabulary.keywords)
        for vertex in graph.vertices():
            assert graph.keywords(vertex) <= domain

    def test_deterministic_given_seed(self):
        graph1 = complete_graph(10, rng=1)
        graph2 = complete_graph(10, rng=1)
        assign_keywords(graph1, rng=7)
        assign_keywords(graph2, rng=7)
        assert all(graph1.keywords(v) == graph2.keywords(v) for v in graph1.vertices())

    def test_invalid_count_rejected(self):
        graph = complete_graph(4, rng=1)
        with pytest.raises(DatasetError):
            assign_keywords(graph, keywords_per_vertex=0)

    def test_explicit_distribution_instance(self):
        graph = complete_graph(30, rng=1)
        vocabulary = default_vocabulary(20)
        distribution = ZipfKeywordDistribution(vocabulary, exponent=1.5)
        assign_keywords(graph, keywords_per_vertex=1, distribution=distribution, rng=5)
        profile = keyword_profile(graph)
        # Zipf concentrates mass on the first-ranked keyword.
        top_keyword = vocabulary[0]
        frequencies = profile["keyword_frequencies"]
        assert frequencies.get(top_keyword, 0) == max(frequencies.values())

    def test_returns_same_graph_for_chaining(self):
        graph = complete_graph(4, rng=1)
        assert assign_keywords(graph, rng=1) is graph


class TestKeywordProfile:
    def test_profile_counts(self):
        graph = complete_graph(6, rng=1)
        assign_keywords(graph, keywords_per_vertex=2, domain_size=10, rng=4)
        profile = keyword_profile(graph)
        assert profile["num_vertices"] == 6
        assert profile["avg_keywords_per_vertex"] == pytest.approx(2.0)
        assert profile["min_keywords_per_vertex"] == 2
        assert profile["max_keywords_per_vertex"] == 2
        assert sum(profile["keyword_frequencies"].values()) == 12

    def test_profile_of_empty_graph(self):
        from repro.graph.social_network import SocialNetwork

        profile = keyword_profile(SocialNetwork())
        assert profile["num_vertices"] == 0
        assert profile["avg_keywords_per_vertex"] == 0.0


class TestVerticesWithAnyKeyword:
    def test_matching_vertices_returned(self, triangle_graph):
        assert vertices_with_any_keyword(triangle_graph, {"movies"}) == {"a", "b"}
        assert vertices_with_any_keyword(triangle_graph, {"books", "sports"}) == {"b", "c", "d"}
        assert vertices_with_any_keyword(triangle_graph, {"gaming"}) == set()
