"""Unit tests for graph statistics."""

import pytest

from repro.graph.generators import complete_graph, ring_lattice_graph
from repro.graph.social_network import SocialNetwork
from repro.graph.statistics import (
    average_clustering,
    compute_statistics,
    count_triangles,
    degree_distribution,
    local_clustering,
)


class TestTriangles:
    def test_triangle_graph_has_one_triangle(self, triangle_graph):
        assert count_triangles(triangle_graph) == 1

    def test_complete_graph_triangle_count(self):
        # K5 has C(5, 3) = 10 triangles.
        assert count_triangles(complete_graph(5, rng=1)) == 10

    def test_triangle_free_graph(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(2, 3, 0.5)
        graph.add_edge(3, 4, 0.5)
        assert count_triangles(graph) == 0

    def test_empty_graph(self):
        assert count_triangles(SocialNetwork()) == 0


class TestClustering:
    def test_local_clustering_of_clique_member(self):
        graph = complete_graph(4, rng=1)
        assert local_clustering(graph, 0) == pytest.approx(1.0)

    def test_local_clustering_degree_below_two(self, triangle_graph):
        assert local_clustering(triangle_graph, "d") == 0.0

    def test_average_clustering_bounds(self):
        graph = ring_lattice_graph(30, ring_neighbors=4, rng=1)
        value = average_clustering(graph)
        assert 0.0 < value <= 1.0

    def test_average_clustering_empty_graph(self):
        assert average_clustering(SocialNetwork()) == 0.0


class TestDegreeDistribution:
    def test_histogram(self, triangle_graph):
        distribution = degree_distribution(triangle_graph)
        assert distribution.counts == {2: 2, 3: 1, 1: 1}
        assert distribution.total == 4
        assert distribution.fraction_at_least(2) == pytest.approx(0.75)
        assert distribution.fraction_at_least(5) == 0.0

    def test_empty_distribution(self):
        distribution = degree_distribution(SocialNetwork())
        assert distribution.total == 0
        assert distribution.fraction_at_least(1) == 0.0


class TestComputeStatistics:
    def test_fields(self, triangle_graph):
        statistics = compute_statistics(triangle_graph)
        assert statistics.num_vertices == 4
        assert statistics.num_edges == 4
        assert statistics.num_triangles == 1
        assert statistics.max_degree == 3
        assert statistics.min_degree == 1
        assert statistics.avg_degree == pytest.approx(2.0)
        assert statistics.num_components == 1
        assert statistics.keyword_domain_size == 3
        assert 0.0 < statistics.avg_edge_probability <= 1.0

    def test_as_row_keys(self, triangle_graph):
        row = compute_statistics(triangle_graph).as_row()
        assert row["dataset"] == "triangle"
        assert row["|V(G)|"] == 4
        assert row["|E(G)|"] == 4

    def test_empty_graph_statistics(self):
        statistics = compute_statistics(SocialNetwork(name="empty"))
        assert statistics.num_vertices == 0
        assert statistics.avg_degree == 0.0
        assert statistics.avg_edge_probability == 0.0
