"""Unit tests for the synthetic graph generators."""

import random

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import (
    assign_uniform_weights,
    barabasi_albert_graph,
    complete_graph,
    erdos_renyi_graph,
    newman_watts_strogatz_graph,
    planted_community_graph,
    ring_lattice_graph,
)


class TestNewmanWattsStrogatz:
    def test_vertex_count(self):
        graph = newman_watts_strogatz_graph(50, rng=1)
        assert graph.num_vertices() == 50

    def test_ring_lattice_edge_count(self):
        # With no shortcuts each vertex connects to ring_neighbors others.
        graph = ring_lattice_graph(30, ring_neighbors=4, rng=1)
        assert graph.num_edges() == 30 * 4 // 2

    def test_shortcuts_add_edges(self):
        base = ring_lattice_graph(60, ring_neighbors=6, rng=2)
        with_shortcuts = newman_watts_strogatz_graph(
            60, ring_neighbors=6, shortcut_probability=0.5, rng=2
        )
        assert with_shortcuts.num_edges() >= base.num_edges()

    def test_probabilities_in_paper_range(self):
        graph = newman_watts_strogatz_graph(40, rng=3)
        for u, v in graph.edges():
            assert 0.5 <= graph.probability(u, v) < 0.6
            assert 0.5 <= graph.probability(v, u) < 0.6

    def test_deterministic_with_same_seed(self):
        graph1 = newman_watts_strogatz_graph(40, rng=7)
        graph2 = newman_watts_strogatz_graph(40, rng=7)
        assert set(map(frozenset, graph1.edges())) == set(map(frozenset, graph2.edges()))

    def test_different_seeds_differ(self):
        graph1 = newman_watts_strogatz_graph(80, rng=1)
        graph2 = newman_watts_strogatz_graph(80, rng=2)
        assert set(map(frozenset, graph1.edges())) != set(map(frozenset, graph2.edges()))

    def test_rng_instance_accepted(self):
        graph = newman_watts_strogatz_graph(20, rng=random.Random(5))
        assert graph.num_vertices() == 20

    def test_invalid_parameters_rejected(self):
        with pytest.raises(GraphError):
            newman_watts_strogatz_graph(0)
        with pytest.raises(GraphError):
            newman_watts_strogatz_graph(10, ring_neighbors=3)
        with pytest.raises(GraphError):
            newman_watts_strogatz_graph(10, shortcut_probability=1.5)
        with pytest.raises(GraphError):
            newman_watts_strogatz_graph(10, weight_range=(0.9, 0.2))

    def test_graph_is_connected(self):
        graph = newman_watts_strogatz_graph(100, rng=9)
        assert graph.is_connected()


class TestOtherGenerators:
    def test_erdos_renyi_edge_probability_extremes(self):
        empty = erdos_renyi_graph(10, 0.0, rng=1)
        assert empty.num_edges() == 0
        full = erdos_renyi_graph(10, 1.0, rng=1)
        assert full.num_edges() == 45

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.2)

    def test_barabasi_albert_size_and_minimum_degree(self):
        graph = barabasi_albert_graph(60, edges_per_vertex=3, rng=4)
        assert graph.num_vertices() == 60
        assert min(graph.degree(v) for v in graph.vertices()) >= 3

    def test_barabasi_albert_heavy_tail(self):
        graph = barabasi_albert_graph(200, edges_per_vertex=2, rng=4)
        degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
        # Preferential attachment concentrates degree on a few hubs.
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]

    def test_barabasi_albert_invalid_parameters(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, edges_per_vertex=3)
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, edges_per_vertex=0)

    def test_planted_community_structure(self):
        graph = planted_community_graph([6, 6], intra_probability=1.0, inter_probability=0.0, rng=1)
        assert graph.num_vertices() == 12
        # Fully dense blocks, no inter-community edges.
        assert graph.num_edges() == 2 * (6 * 5 // 2)
        assert not graph.is_connected()

    def test_planted_community_invalid_sizes(self):
        with pytest.raises(GraphError):
            planted_community_graph([])
        with pytest.raises(GraphError):
            planted_community_graph([4, 0])

    def test_complete_graph(self):
        graph = complete_graph(6, rng=1)
        assert graph.num_edges() == 15
        assert all(graph.degree(v) == 5 for v in graph.vertices())

    def test_assign_uniform_weights(self):
        graph = complete_graph(5, rng=1)
        assign_uniform_weights(graph, weight_range=(0.2, 0.3), rng=2)
        for u, v in graph.edges():
            assert 0.2 <= graph.probability(u, v) < 0.3
            assert 0.2 <= graph.probability(v, u) < 0.3
