"""Unit tests for BFS traversal and r-hop subgraph extraction."""

import pytest

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.social_network import SocialNetwork
from repro.graph.subgraph import SubgraphView
from repro.graph.traversal import (
    bfs_distances,
    breadth_first_order,
    eccentricity,
    hop_distances_within,
    hop_subgraph,
    k_hop_neighborhood_sizes,
    pairwise_hop_distance,
    satisfies_radius_constraint,
    vertices_within_radius,
)


def build_path_graph(length: int) -> SocialNetwork:
    graph = SocialNetwork(name="path")
    for v in range(length):
        graph.add_vertex(v, {"movies"})
    for v in range(length - 1):
        graph.add_edge(v, v + 1, 0.6)
    return graph


class TestBfsDistances:
    def test_distances_on_path(self):
        graph = build_path_graph(5)
        distances = bfs_distances(graph, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_max_depth_truncates(self):
        graph = build_path_graph(6)
        distances = bfs_distances(graph, 0, max_depth=2)
        assert distances == {0: 0, 1: 1, 2: 2}

    def test_max_depth_zero(self):
        graph = build_path_graph(3)
        assert bfs_distances(graph, 1, max_depth=0) == {1: 0}

    def test_negative_depth_rejected(self):
        graph = build_path_graph(3)
        with pytest.raises(GraphError):
            bfs_distances(graph, 0, max_depth=-1)

    def test_missing_source_rejected(self):
        graph = build_path_graph(3)
        with pytest.raises(VertexNotFoundError):
            bfs_distances(graph, 99)

    def test_allowed_restricts_traversal(self):
        graph = build_path_graph(5)
        distances = bfs_distances(graph, 0, allowed=frozenset({0, 1, 3, 4}))
        assert distances == {0: 0, 1: 1}

    def test_source_outside_allowed_rejected(self):
        graph = build_path_graph(3)
        with pytest.raises(GraphError):
            bfs_distances(graph, 0, allowed=frozenset({1, 2}))

    def test_disconnected_vertices_absent(self):
        graph = build_path_graph(3)
        graph.add_vertex(99)
        distances = bfs_distances(graph, 0)
        assert 99 not in distances


class TestHopSubgraph:
    def test_radius_one(self, triangle_graph):
        view = hop_subgraph(triangle_graph, "a", 1)
        assert view.vertices == frozenset({"a", "b", "c"})
        assert view.center == "a"

    def test_radius_two_includes_pendant(self, triangle_graph):
        view = hop_subgraph(triangle_graph, "a", 2)
        assert view.vertices == frozenset({"a", "b", "c", "d"})

    def test_radius_zero_is_center_only(self, triangle_graph):
        view = hop_subgraph(triangle_graph, "b", 0)
        assert view.vertices == frozenset({"b"})

    def test_negative_radius_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            hop_subgraph(triangle_graph, "a", -1)

    def test_hop_subgraph_on_path(self):
        graph = build_path_graph(7)
        view = hop_subgraph(graph, 3, 2)
        assert view.vertices == frozenset({1, 2, 3, 4, 5})


class TestWithinViewDistances:
    def test_distances_measured_inside_view(self, triangle_graph):
        # Inside the view {a, d, c} the a-c edge still exists, so c is 1 hop.
        view = SubgraphView(triangle_graph, {"a", "c", "d"})
        distances = hop_distances_within(view, "a")
        assert distances == {"a": 0, "c": 1, "d": 2}

    def test_distances_change_when_shortcut_removed(self):
        graph = build_path_graph(4)
        graph.add_edge(0, 3, 0.6)
        full = SubgraphView(graph, {0, 1, 2, 3})
        assert hop_distances_within(full, 0)[3] == 1
        without_shortcut = SubgraphView(graph, {0, 1, 2})
        assert hop_distances_within(without_shortcut, 0)[2] == 2

    def test_eccentricity(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c", "d"})
        assert eccentricity(view, "c") == 1
        assert eccentricity(view, "d") == 2

    def test_eccentricity_unreachable_raises(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "d"})
        with pytest.raises(GraphError):
            eccentricity(view, "a")

    def test_vertices_within_radius(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c", "d"})
        assert vertices_within_radius(view, "a", 1) == frozenset({"a", "b", "c"})

    def test_satisfies_radius_constraint(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c", "d"})
        assert satisfies_radius_constraint(view, "c", 1)
        assert not satisfies_radius_constraint(view, "a", 1)
        assert satisfies_radius_constraint(view, "a", 2)


class TestHelpers:
    def test_breadth_first_order_starts_at_source(self):
        graph = build_path_graph(4)
        order = breadth_first_order(graph, 2)
        assert order[0] == 2
        assert set(order) == {0, 1, 2, 3}

    def test_pairwise_hop_distance(self):
        graph = build_path_graph(5)
        assert pairwise_hop_distance(graph, 0, 4) == 4
        graph.add_vertex(99)
        assert pairwise_hop_distance(graph, 0, 99) is None

    def test_k_hop_neighborhood_sizes(self):
        graph = build_path_graph(5)
        sizes = k_hop_neighborhood_sizes(graph, [0, 2], radius=1)
        assert sizes == {0: 2, 2: 3}
