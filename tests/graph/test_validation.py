"""Unit tests for graph validation."""

import pytest

from repro.exceptions import GraphError
from repro.graph.social_network import SocialNetwork
from repro.graph.validation import (
    largest_connected_component,
    require_connected,
    validate_graph,
)


class TestValidateGraph:
    def test_valid_graph_passes(self, triangle_graph):
        report = validate_graph(triangle_graph)
        assert report.is_valid
        assert report.issues == []
        report.raise_if_invalid()  # should not raise

    def test_asymmetric_adjacency_detected(self, triangle_graph):
        # Break the invariant by reaching into the internals (simulating corruption).
        triangle_graph._adj["a"].pop("b")
        report = validate_graph(triangle_graph)
        assert not report.is_valid
        assert any("asymmetric" in issue for issue in report.issues)

    def test_missing_probability_detected(self, triangle_graph):
        triangle_graph._prob.pop(("a", "b"))
        report = validate_graph(triangle_graph)
        assert any("missing probability" in issue for issue in report.issues)

    def test_out_of_range_probability_detected(self, triangle_graph):
        triangle_graph._prob[("a", "b")] = 1.7
        report = validate_graph(triangle_graph)
        assert any("out of range" in issue for issue in report.issues)

    def test_strict_mode_raises(self, triangle_graph):
        triangle_graph._prob[("a", "b")] = -1.0
        with pytest.raises(GraphError):
            validate_graph(triangle_graph, strict=True)

    def test_empty_graph_is_valid(self):
        assert validate_graph(SocialNetwork()).is_valid


class TestConnectivityHelpers:
    def test_require_connected_passes(self, triangle_graph):
        require_connected(triangle_graph)

    def test_require_connected_raises(self, triangle_graph):
        triangle_graph.add_vertex("island")
        with pytest.raises(GraphError):
            require_connected(triangle_graph)

    def test_largest_connected_component(self):
        graph = SocialNetwork(name="parts")
        graph.add_edge(1, 2, 0.5)
        graph.add_edge(2, 3, 0.5)
        graph.add_edge(10, 11, 0.5)
        graph.add_vertex(99, {"movies"})
        lcc = largest_connected_component(graph)
        assert lcc.num_vertices() == 3
        assert lcc.has_edge(1, 2)
        assert not lcc.has_vertex(10)

    def test_largest_connected_component_of_empty_graph(self):
        lcc = largest_connected_component(SocialNetwork())
        assert lcc.num_vertices() == 0
