"""Unit tests for the dataset registry and stand-in generators."""

import pytest

from repro.exceptions import DatasetError
from repro.graph.datasets import (
    PAPER_DATASET_SIZES,
    amazon_like,
    dataset_names,
    dataset_spec,
    dblp_like,
    gau,
    load_dataset,
    synthetic_small_world,
    uni,
    zipf,
)
from repro.graph.statistics import average_clustering


class TestRegistry:
    def test_dataset_names_match_paper(self):
        assert dataset_names() == ("dblp", "amazon", "uni", "gau", "zipf")

    def test_load_dataset_by_name(self):
        graph = load_dataset("uni", num_vertices=120, rng=1)
        assert graph.num_vertices() > 0
        assert graph.name == "Uni"

    def test_load_dataset_case_insensitive(self):
        graph = load_dataset("ZIPF", num_vertices=120, rng=1)
        assert graph.name == "Zipf"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("twitter")
        with pytest.raises(DatasetError):
            dataset_spec("twitter")

    def test_dataset_spec_flags_real_standins(self):
        assert dataset_spec("dblp").is_real_standin
        assert not dataset_spec("uni").is_real_standin

    def test_paper_sizes_recorded(self):
        assert PAPER_DATASET_SIZES["DBLP"]["num_vertices"] == 317_080
        assert PAPER_DATASET_SIZES["Amazon"]["num_edges"] == 925_872


class TestSyntheticGraphs:
    def test_uni_gau_zipf_have_keywords_and_weights(self):
        for loader in (uni, gau, zipf):
            graph = loader(num_vertices=150, rng=2)
            assert graph.is_connected()
            assert all(len(graph.keywords(v)) >= 1 for v in graph.vertices())
            for u, v in graph.edges():
                assert 0.5 <= graph.probability(u, v) < 0.6

    def test_unknown_distribution_rejected(self):
        with pytest.raises(DatasetError):
            synthetic_small_world("poisson", num_vertices=50)

    def test_keyword_domain_respected(self):
        graph = uni(num_vertices=200, domain_size=10, rng=4)
        assert len(graph.keyword_domain()) <= 10

    def test_keywords_per_vertex_respected(self):
        graph = uni(num_vertices=100, keywords_per_vertex=2, rng=4)
        assert all(len(graph.keywords(v)) == 2 for v in graph.vertices())

    def test_deterministic_given_seed(self):
        graph1 = uni(num_vertices=100, rng=9)
        graph2 = uni(num_vertices=100, rng=9)
        assert graph1.num_edges() == graph2.num_edges()
        assert all(graph1.keywords(v) == graph2.keywords(v) for v in graph1.vertices())


class TestRealStandins:
    def test_dblp_like_is_clustered(self):
        graph = dblp_like(num_vertices=300, rng=3)
        assert graph.is_connected()
        # Co-authorship cliques yield a clearly non-trivial clustering coefficient.
        assert average_clustering(graph) > 0.2

    def test_amazon_like_has_heavy_tail(self):
        graph = amazon_like(num_vertices=300, rng=3)
        assert graph.is_connected()
        degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
        assert degrees[0] > 3 * (sum(degrees) / len(degrees))

    def test_standins_have_keywords(self):
        for loader in (dblp_like, amazon_like):
            graph = loader(num_vertices=120, rng=5)
            assert all(len(graph.keywords(v)) >= 1 for v in graph.vertices())

    def test_too_small_standins_rejected(self):
        with pytest.raises(DatasetError):
            dblp_like(num_vertices=5)
        with pytest.raises(DatasetError):
            amazon_like(num_vertices=5)
