"""Unit tests for SubgraphView."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.subgraph import SubgraphView


class TestConstruction:
    def test_basic_view(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c"})
        assert len(view) == 3
        assert "a" in view
        assert "d" not in view

    def test_unknown_vertex_rejected(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            SubgraphView(triangle_graph, {"a", "zzz"})

    def test_center_must_be_member(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            SubgraphView(triangle_graph, {"a", "b"}, center="d")

    def test_center_recorded(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b"}, center="a")
        assert view.center == "a"

    def test_equality_and_hash(self, triangle_graph):
        view1 = SubgraphView(triangle_graph, {"a", "b"})
        view2 = SubgraphView(triangle_graph, {"b", "a"})
        view3 = SubgraphView(triangle_graph, {"a", "c"})
        assert view1 == view2
        assert hash(view1) == hash(view2)
        assert view1 != view3


class TestStructure:
    def test_neighbors_restricted_to_view(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "d"})
        assert set(view.neighbors("a")) == {"b"}

    def test_neighbors_of_outside_vertex_raises(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b"})
        with pytest.raises(VertexNotFoundError):
            list(view.neighbors("c"))

    def test_degree_within_view(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c"})
        assert view.degree("a") == 2
        full_view = SubgraphView(triangle_graph, {"a", "b", "c", "d"})
        assert full_view.degree("c") == 3

    def test_edges_each_reported_once(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c"})
        edges = {frozenset(edge) for edge in view.edges()}
        assert edges == {frozenset({"a", "b"}), frozenset({"b", "c"}), frozenset({"a", "c"})}
        assert view.num_edges() == 3

    def test_keywords_and_probability_delegate(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b"})
        assert view.keywords("a") == triangle_graph.keywords("a")
        assert view.probability("a", "b") == triangle_graph.probability("a", "b")

    def test_keywords_outside_view_raises(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b"})
        with pytest.raises(VertexNotFoundError):
            view.keywords("c")


class TestConnectivityAndRestriction:
    def test_is_connected_true(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c"})
        assert view.is_connected()

    def test_is_connected_false(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "d"})
        assert not view.is_connected()

    def test_empty_view_is_connected(self, triangle_graph):
        assert SubgraphView(triangle_graph, set()).is_connected()

    def test_component_of(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "d"})
        assert view.component_of("a") == {"a", "b"}
        assert view.component_of("d") == {"d"}

    def test_restrict_keeps_center_when_possible(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c"}, center="a")
        restricted = view.restrict({"a", "b"})
        assert restricted.center == "a"
        assert restricted.vertices == frozenset({"a", "b"})

    def test_restrict_drops_center_when_removed(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c"}, center="a")
        restricted = view.restrict({"b", "c"})
        assert restricted.center is None

    def test_restrict_intersects(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b"})
        restricted = view.restrict({"b", "c", "d"})
        assert restricted.vertices == frozenset({"b"})

    def test_materialize(self, triangle_graph):
        view = SubgraphView(triangle_graph, {"a", "b", "c"})
        standalone = view.materialize()
        assert standalone.num_vertices() == 3
        assert standalone.num_edges() == 3
        assert standalone.keywords("a") == triangle_graph.keywords("a")
