"""Unit tests for graph I/O (edge lists, JSON, networkx conversion)."""

import pytest

from repro.exceptions import DatasetError, SerializationError
from repro.graph.io import (
    from_networkx,
    graph_from_dict,
    graph_to_dict,
    load_graph_json,
    read_edge_list,
    save_graph_json,
    to_networkx,
    write_edge_list,
)
from repro.graph.social_network import SocialNetwork


class TestEdgeList:
    def test_round_trip(self, tmp_path, triangle_graph):
        path = tmp_path / "graph.tsv"
        write_edge_list(triangle_graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_vertices() == triangle_graph.num_vertices()
        assert loaded.num_edges() == triangle_graph.num_edges()
        assert loaded.probability("a", "b") == pytest.approx(
            triangle_graph.probability("a", "b")
        )

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# header\n\n1\t2\n2\t3\n")
        graph = read_edge_list(path)
        assert graph.num_vertices() == 3
        assert graph.num_edges() == 2
        assert graph.has_edge(1, 2)

    def test_integer_vertices_parsed(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("10 20\n")
        graph = read_edge_list(path)
        assert graph.has_vertex(10)
        assert not graph.has_vertex("10")

    def test_default_probability_applied(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n")
        graph = read_edge_list(path, default_probability=0.42)
        assert graph.probability(1, 2) == pytest.approx(0.42)

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges() == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("only-one-column\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_bad_probability_rejected(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2 not-a-number\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            read_edge_list(tmp_path / "nope.txt")


class TestJsonDocuments:
    def test_round_trip_preserves_everything(self, tmp_path, triangle_graph):
        path = tmp_path / "graph.json"
        save_graph_json(triangle_graph, path)
        loaded = load_graph_json(path)
        assert loaded.num_vertices() == triangle_graph.num_vertices()
        assert loaded.num_edges() == triangle_graph.num_edges()
        for vertex in triangle_graph.vertices():
            assert loaded.keywords(vertex) == triangle_graph.keywords(vertex)
        for u, v in triangle_graph.edges():
            assert loaded.probability(u, v) == pytest.approx(triangle_graph.probability(u, v))
            assert loaded.probability(v, u) == pytest.approx(triangle_graph.probability(v, u))

    def test_dict_round_trip(self, triangle_graph):
        payload = graph_to_dict(triangle_graph)
        rebuilt = graph_from_dict(payload)
        assert rebuilt.num_edges() == triangle_graph.num_edges()

    def test_unsupported_version_rejected(self, triangle_graph):
        payload = graph_to_dict(triangle_graph)
        payload["format_version"] = 999
        with pytest.raises(SerializationError):
            graph_from_dict(payload)

    def test_malformed_document_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"format_version": 1, "vertices": [{"bogus": 1}], "edges": []})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_graph_json(tmp_path / "nope.json")


class TestNetworkxConversion:
    def test_to_networkx_preserves_directional_weights(self, triangle_graph):
        networkx = pytest.importorskip("networkx")
        digraph = to_networkx(triangle_graph)
        assert isinstance(digraph, networkx.DiGraph)
        assert digraph.number_of_nodes() == 4
        assert digraph["a"]["b"]["weight"] == pytest.approx(
            triangle_graph.probability("a", "b")
        )
        assert set(digraph.nodes["a"]["keywords"]) == set(triangle_graph.keywords("a"))

    def test_from_networkx_undirected(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.Graph()
        nx_graph.add_node(1, keywords={"movies"})
        nx_graph.add_node(2)
        nx_graph.add_edge(1, 2, weight=0.4)
        graph = from_networkx(nx_graph)
        assert graph.probability(1, 2) == pytest.approx(0.4)
        assert graph.probability(2, 1) == pytest.approx(0.4)
        assert graph.keywords(1) == frozenset({"movies"})

    def test_round_trip_through_networkx(self, triangle_graph):
        pytest.importorskip("networkx")
        rebuilt = from_networkx(to_networkx(triangle_graph))
        assert rebuilt.num_vertices() == triangle_graph.num_vertices()
        assert rebuilt.num_edges() == triangle_graph.num_edges()
        assert rebuilt.probability("a", "b") == pytest.approx(
            triangle_graph.probability("a", "b")
        )
        assert rebuilt.probability("b", "a") == pytest.approx(
            triangle_graph.probability("b", "a")
        )

    def test_from_networkx_self_loop_skipped(self):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.Graph()
        nx_graph.add_edge(1, 1)
        nx_graph.add_edge(1, 2)
        graph = from_networkx(nx_graph)
        assert graph.num_edges() == 1

    def _non_integer_id_graph(self):
        """Mixed non-integer hashable ids: spaced strings, tuples, and ints."""
        from repro.graph.social_network import SocialNetwork

        graph = SocialNetwork(name="non-integer-ids")
        graph.add_vertex("Jane Doe", {"movies"})
        graph.add_vertex(("paper", 2024), {"books", "travel"})
        graph.add_vertex(42, {"music"})
        graph.add_edge("Jane Doe", ("paper", 2024), 0.3, 0.7)
        graph.add_edge(("paper", 2024), 42, 0.55)
        graph.add_edge("Jane Doe", 42, 0.2, 0.9)
        return graph

    def test_round_trip_with_non_integer_ids(self):
        """DiGraph round trip preserves spaced-string and tuple vertex ids."""
        pytest.importorskip("networkx")
        graph = self._non_integer_id_graph()
        rebuilt = from_networkx(to_networkx(graph))
        assert set(rebuilt.vertices()) == set(graph.vertices())
        for vertex in graph.vertices():
            assert rebuilt.keywords(vertex) == graph.keywords(vertex)
        for u, v in graph.edges():
            assert rebuilt.probability(u, v) == pytest.approx(graph.probability(u, v))
            assert rebuilt.probability(v, u) == pytest.approx(graph.probability(v, u))

    def test_non_integer_ids_intern_consistently_through_networkx(self):
        """VertexTable interning is id-value based, so a networkx round trip
        (which may reorder vertices) still interns every id and freezing the
        same graph twice yields identical tables."""
        pytest.importorskip("networkx")
        graph = self._non_integer_id_graph()
        rebuilt = from_networkx(to_networkx(graph))
        original_csr = graph.freeze()
        rebuilt_csr = rebuilt.freeze()
        for vertex in graph.vertices():
            # Same ids exist in both tables (dense ints may differ when
            # networkx reorders; the id <-> int bijection must hold).
            dense = rebuilt_csr.table.index_of(vertex)
            assert rebuilt_csr.table.id_of(dense) == vertex
            assert original_csr.table.id_of(
                original_csr.table.index_of(vertex)
            ) == vertex
        # Interning stability: re-freezing an unchanged graph is identical.
        again = rebuilt.freeze()
        assert again.table == rebuilt_csr.table
        assert again.indices == rebuilt_csr.indices
        assert again.prob_out == rebuilt_csr.prob_out

    def test_freeze_thaw_preserves_non_integer_ids(self):
        graph = self._non_integer_id_graph()
        thawed = graph.freeze().thaw()
        assert set(thawed.vertices()) == set(graph.vertices())
        for u, v in graph.edges():
            assert thawed.probability(u, v) == graph.probability(u, v)
            assert thawed.probability(v, u) == graph.probability(v, u)
        assert thawed.keywords("Jane Doe") == frozenset({"movies"})


class TestEmptyGraph:
    def test_empty_graph_json_round_trip(self, tmp_path):
        graph = SocialNetwork(name="empty")
        path = tmp_path / "empty.json"
        save_graph_json(graph, path)
        loaded = load_graph_json(path)
        assert loaded.num_vertices() == 0
        assert loaded.num_edges() == 0
