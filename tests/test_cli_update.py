"""CLI tests for the `repro update` subcommand (edit-script replay)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.graph.generators import planted_community_graph
from repro.graph.io import load_graph_json, save_graph_json
from repro.graph.keyword_assignment import assign_keywords


@pytest.fixture(scope="module")
def graph_path(tmp_path_factory):
    graph = planted_community_graph(
        [10, 10, 10], intra_probability=0.6, inter_probability=0.02, rng=5
    )
    assign_keywords(graph, keywords_per_vertex=2, domain_size=12, rng=5)
    path = tmp_path_factory.mktemp("update-cli") / "graph.json"
    save_graph_json(graph, path)
    return str(path)


def test_update_replays_saved_script(graph_path, tmp_path, capsys):
    script_path = tmp_path / "edits.json"
    UpdateBatch(
        [EdgeUpdate.insert(0, 29, 0.4), EdgeUpdate.delete(0, 29)]
    ).save(script_path)
    exit_code = main(["update", graph_path, "--script", str(script_path)])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "dynamic update replay" in captured
    assert "epoch 1" in captured


def test_update_random_script_with_outputs(graph_path, tmp_path, capsys):
    out_script = tmp_path / "script.json"
    out_graph = tmp_path / "mutated.json"
    out_index = tmp_path / "index.json"
    exit_code = main(
        [
            "update", graph_path,
            "--random", "6", "--seed", "3",
            "--batch-size", "3",
            "--damage-threshold", "1.0",
            "--out-script", str(out_script),
            "--out-graph", str(out_graph),
            "--out-index", str(out_index),
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "epoch 2" in captured  # 6 edits in chunks of 3

    # The written script replays cleanly against the original graph.
    script = UpdateBatch.load(out_script)
    assert len(script) == 6
    script.validate_against(load_graph_json(graph_path))

    # The mutated graph + refreshed index reload into a working engine.
    from repro.core.engine import InfluentialCommunityEngine

    mutated = load_graph_json(str(out_graph))
    engine = InfluentialCommunityEngine.from_saved_index(mutated, out_index)
    assert engine.index.num_vertices() == mutated.num_vertices()


def test_update_random_focus_restricts_churn(graph_path, capsys):
    exit_code = main(
        [
            "update", graph_path,
            "--random", "5", "--seed", "2",
            "--focus", "0", "--focus-radius", "1",
            "--damage-threshold", "1.0",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "patch" in captured  # the applied mode (patch/compact/rebuild)


def test_update_summary_reports_mode_epoch_and_dirt(graph_path, capsys):
    """The replay table carries the applied mode, epoch and overlay dirt ratio."""
    exit_code = main(
        [
            "update", graph_path,
            "--random", "6", "--seed", "3",
            "--batch-size", "3",
            "--damage-threshold", "1.0",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    for column in ("mode", "dirt", "epoch"):
        assert column in captured
    assert "patch" in captured
    assert "overlay dirt" in captured  # final summary line
    assert "backend reference" in captured


def test_update_fast_backend_patches_in_place(graph_path, capsys):
    """--backend fast replays through the DeltaCSR overlay (non-zero dirt)."""
    exit_code = main(
        [
            "update", graph_path,
            "--backend", "fast",
            "--random", "4", "--seed", "3",
            "--damage-threshold", "1.0",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "backend fast" in captured
    assert "patch" in captured or "compact" in captured
    assert "epoch 1" in captured


def test_update_unknown_focus_vertex_fails_cleanly(graph_path, capsys):
    exit_code = main(["update", graph_path, "--random", "5", "--focus", "no-such-vertex"])
    assert exit_code == 2
    assert "error" in capsys.readouterr().err


def test_update_empty_script_is_a_clean_noop(graph_path, tmp_path, capsys):
    script_path = tmp_path / "empty.json"
    UpdateBatch([]).save(script_path)
    exit_code = main(["update", graph_path, "--script", str(script_path)])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "epoch 0" in captured


def test_update_requires_script_or_random(graph_path, capsys):
    exit_code = main(["update", graph_path])
    assert exit_code == 2
    assert "exactly one of --script or --random" in capsys.readouterr().err


def test_update_rejects_bad_script(graph_path, tmp_path, capsys):
    script_path = tmp_path / "bad.json"
    script_path.write_text(json.dumps({"edits": [{"op": "delete", "u": 0, "v": 29}]}))
    exit_code = main(["update", graph_path, "--script", str(script_path)])
    assert exit_code == 2
    assert "does not exist" in capsys.readouterr().err
