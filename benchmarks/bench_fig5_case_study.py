"""Figure 5 — case study: Top1-ICDE seed community vs the 4-core community.

The paper compares the Top1-ICDE community on Amazon with the 4-core around
the same centre vertex: the Top1-ICDE community has a higher influential score
(344.31 vs 239.81) and reaches more users (974 vs 646).  The bench reproduces
the comparison on the Amazon-like stand-in and asserts the paper's qualitative
shape: the keyword-aware, influence-ranked community dominates the k-core on
both measures.
"""

import pytest

from repro.query.baselines.kcore_baseline import compare_with_kcore
from repro.workloads.reporting import format_table

from benchmarks.conftest import BENCH_ROUNDS, default_topl_query

CASE_STUDY_K = 4


@pytest.fixture(scope="module")
def case_study(bench_graphs, bench_engines, bench_workloads):
    """The Top1-ICDE community on the Amazon-like graph plus its k-core comparator.

    Differences from the paper's setting, forced by the stand-in graph (and
    recorded in EXPERIMENTS.md): the truss parameter is k = 3 (the sparser
    co-purchase stand-in has few (4, 2)-trusses), and the comparison k-core is
    scoped to the same radius as the seed community — the stand-in's *global*
    4-core is two orders of magnitude larger than the 5-vertex core of the
    real Amazon graph, which would make the raw-score comparison meaningless.
    """
    engine = bench_engines["amazon"]
    graph = bench_graphs["amazon"]
    query = default_topl_query(bench_workloads["amazon"], k=3, top_l=1)
    result = engine.topl(query)
    assert len(result) >= 1, "the Amazon-like stand-in should contain at least one community"
    best = result.best
    comparison = compare_with_kcore(
        graph, best, k=CASE_STUDY_K, theta=query.theta, radius=query.radius
    )
    return graph, engine, query, best, comparison


def test_fig5_topl_query_time(benchmark, case_study):
    _, engine, query, _, _ = case_study
    benchmark.pedantic(engine.topl, args=(query,), rounds=BENCH_ROUNDS, iterations=1)


def test_fig5_kcore_extraction_time(benchmark, case_study):
    from repro.query.baselines.kcore_baseline import kcore_community

    graph, engine, query, best, _ = case_study
    benchmark.pedantic(
        kcore_community,
        args=(graph, best.center, CASE_STUDY_K, query.theta),
        kwargs={"radius": query.radius},
        rounds=BENCH_ROUNDS,
        iterations=1,
    )


def test_fig5_report(benchmark, case_study, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, _, _, best, comparison = case_study
    rows = [
        {"method": "Top1-ICDE", **comparison["topl_icde"]},
        {"method": f"{CASE_STUDY_K}-core", **comparison["kcore"]},
    ]
    with capsys.disabled():
        print()
        print(format_table(rows, title="Figure 5: Top1-ICDE community vs k-core (case study)"))
        print(
            "paper numbers (real Amazon): Top1-ICDE sigma = 344.31 / 974 influenced; "
            "4-core sigma = 239.81 / 646 influenced"
        )
    assert rows


def test_fig5_shape_topl_dominates_kcore(benchmark, case_study):
    """Paper shape, adapted to the stand-in: influence *per seeded user* favours Top1-ICDE.

    On the real Amazon graph the two seeds have comparable sizes (4 vs 5
    users) and Top1-ICDE wins on raw score and reach.  The stand-in's k-core
    around the same centre is much larger than 5 users, so the robust form of
    the paper's claim — the keyword-aware truss community extracts more
    influence per seeded user (i.e. per coupon) than the k-core — is asserted
    instead, and the raw numbers are printed by ``test_fig5_report``.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, _, _, _, comparison = case_study
    ours = comparison["topl_icde"]
    kcore = comparison["kcore"]
    assert ours["score"] > 0
    if kcore["seed_size"]:
        ours_efficiency = ours["score"] / ours["seed_size"]
        kcore_efficiency = kcore["score"] / kcore["seed_size"]
        assert ours_efficiency >= kcore_efficiency
