"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation
(Section VIII).  The graphs are scaled-down stand-ins — pure-Python code on a
laptop cannot run the authors' 300K–1M vertex datasets in a benchmark loop —
but the *comparisons* (who wins, ordering, monotone trends) are the paper's.

Scaling knobs (environment variables):

``REPRO_BENCH_VERTICES``
    Base synthetic-graph size (default 400 vertices).
``REPRO_BENCH_ROUNDS``
    pytest-benchmark rounds per measurement (default 3).

Engines (the offline phase) are built once per session and shared.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.graph.datasets import amazon_like, dblp_like, gau, uni, zipf
from repro.workloads.queries import QueryWorkload
from repro.workloads.sweeps import PAPER_PARAMETER_GRID

BENCH_VERTICES = int(os.environ.get("REPRO_BENCH_VERTICES", "400"))
BENCH_ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))

#: Offline configuration shared by every bench (paper defaults, r_max = 2 to
#: keep the offline phase affordable at benchmark scale; Table III's default
#: query radius is 2).
BENCH_CONFIG = EngineConfig(max_radius=2, thresholds=(0.1, 0.2, 0.3))

#: Default query parameters (Table III bold entries).
DEFAULTS = PAPER_PARAMETER_GRID.defaults()


def pytest_report_header(config):
    return (
        f"repro benchmarks: |V| = {BENCH_VERTICES} per dataset, "
        f"{BENCH_ROUNDS} rounds (REPRO_BENCH_VERTICES / REPRO_BENCH_ROUNDS to change)"
    )


def _build_graphs() -> dict:
    size = BENCH_VERTICES
    return {
        "dblp": dblp_like(num_vertices=size, rng=7),
        "amazon": amazon_like(num_vertices=size, rng=11),
        "uni": uni(num_vertices=size, rng=23),
        "gau": gau(num_vertices=size, rng=23),
        "zipf": zipf(num_vertices=size, rng=23),
    }


@pytest.fixture(scope="session")
def bench_graphs() -> dict:
    """The five evaluation datasets (scaled-down stand-ins)."""
    return _build_graphs()


@pytest.fixture(scope="session")
def bench_engines(bench_graphs) -> dict:
    """One engine (offline phase + index) per dataset."""
    return {
        name: InfluentialCommunityEngine.build(graph, config=BENCH_CONFIG, validate=False)
        for name, graph in bench_graphs.items()
    }


@pytest.fixture(scope="session")
def bench_workloads(bench_graphs) -> dict:
    """One reproducible query workload per dataset."""
    return {name: QueryWorkload(graph, rng=97) for name, graph in bench_graphs.items()}


@pytest.fixture(scope="session")
def synthetic_names() -> tuple:
    """The synthetic datasets used by the Figure 3 / Figure 6 robustness sweeps."""
    return ("uni", "gau", "zipf")


def default_topl_query(workload: QueryWorkload, **overrides):
    """Build a TopL-ICDE query at the Table III defaults with optional overrides.

    The query keyword set is re-sampled from a *fresh* workload seeded with the
    same RNG seed, so every method / pruning configuration measured for the
    same dataset and parameter setting answers exactly the same query.
    """
    parameters = {
        "num_keywords": DEFAULTS["num_query_keywords"],
        "k": DEFAULTS["k"],
        "radius": DEFAULTS["radius"],
        "theta": DEFAULTS["theta"],
        "top_l": DEFAULTS["top_l"],
    }
    parameters.update(overrides)
    fresh = QueryWorkload(workload.graph, rng=97)
    return fresh.topl_query(**parameters)


def default_dtopl_query(workload: QueryWorkload, **overrides):
    """Build a DTopL-ICDE query at the Table III defaults with optional overrides.

    Deterministic in the same way as :func:`default_topl_query`.
    """
    parameters = {
        "num_keywords": DEFAULTS["num_query_keywords"],
        "k": DEFAULTS["k"],
        "radius": DEFAULTS["radius"],
        "theta": DEFAULTS["theta"],
        "top_l": DEFAULTS["top_l"],
        "candidate_factor": DEFAULTS["candidate_factor"],
    }
    parameters.update(overrides)
    fresh = QueryWorkload(workload.graph, rng=97)
    return fresh.dtopl_query(**parameters)
