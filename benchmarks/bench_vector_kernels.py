"""Vector kernel tier: numpy array programs vs the stdlib fast kernels.

The ``kernel_tier="vector"`` workspace re-implements every fast-backend
kernel — triangle/support counting, the truss bucket peel, hop-ball BFS and
the batched max-product propagation of Algorithm 2 — as numpy array programs
over the zero-copy ``CSRGraph.as_numpy()`` views.  This bench records what
that buys on top of the existing fast backend, in ``BENCH_vector.json``:

* **end-to-end index build** (pre-computation + tree) under
  ``kernel_tier="stdlib"`` vs ``kernel_tier="vector"``, on the repo's
  5k-edge planted bench network (the ``BENCH_fastcore.json`` graph — the
  headline ratio, committed target **>= 2x**) and on a ~60k-edge
  Barabási–Albert power-law graph where the batched kernels have real
  arrays to chew on;
* **per-kernel timings** (supports, peel, bfs, propagation) on the
  power-law graph, where the graph is large enough that the adaptive
  dispatch picks the numpy paths (small graphs deliberately keep the
  stdlib kernels — same output, less overhead).

Correctness is part of the bench: every per-kernel comparison asserts exact
equality, both end-to-end builds assert bit-identical pre-computed records,
and the TopL/DTopL answers of engines on both tiers are compared community
for community *before* any number is written.

Run as a pytest module (``pytest benchmarks/bench_vector_kernels.py``) or
standalone to record the JSON baseline::

    python benchmarks/bench_vector_kernels.py --out BENCH_vector.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.fastgraph import NUMPY_AVAILABLE, NUMPY_VERSION, freeze
from repro.fastgraph.kernels import CSRWorkspace
from repro.graph.generators import barabasi_albert_graph
from repro.graph.keyword_assignment import assign_keywords
from repro.index.precompute import precompute
from repro.index.tree import build_tree_index
from repro.query.params import make_dtopl_query, make_topl_query
from repro.workloads.reporting import bench_envelope

from benchmarks.bench_index_build import (
    GRAPH_SEED,
    assert_precomputed_equal,
    build_bench_network,
)

#: Vertices of the power-law graph (scaled down for the CI smoke).
POWERLAW_VERTICES = int(os.environ.get("REPRO_BENCH_VECTOR_POWERLAW_VERTICES", "12000"))
#: Preferential-attachment edges per vertex (~5 edges/vertex => ~60k edges).
POWERLAW_EDGES_PER_VERTEX = 5
#: Seed for the power-law graph (structure, weights and keywords).
POWERLAW_SEED = 29

_BENCH_CONFIG = EngineConfig(max_radius=3, thresholds=(0.1, 0.2, 0.3))
_POWERLAW_CONFIG = EngineConfig(max_radius=2, thresholds=(0.1, 0.3))


def build_powerlaw_network(num_vertices: int = POWERLAW_VERTICES):
    """A heavy-tailed ~60k-edge graph with weighted-cascade-scale weights."""
    graph = barabasi_albert_graph(
        num_vertices,
        POWERLAW_EDGES_PER_VERTEX,
        weight_range=(0.05, 0.3),
        rng=POWERLAW_SEED,
        name=f"powerlaw-{num_vertices}",
    )
    assign_keywords(graph, keywords_per_vertex=3, domain_size=50, rng=POWERLAW_SEED)
    return graph


def measure_index_build(graph, config: EngineConfig, kernel_tier: str) -> dict:
    """Time the offline phase (precompute + tree) on one kernel tier."""
    started = time.perf_counter()
    precomputed = precompute(
        graph,
        max_radius=config.max_radius,
        thresholds=config.thresholds,
        num_bits=config.num_bits,
        backend="fast",
        kernel_tier=kernel_tier,
    )
    precompute_seconds = time.perf_counter() - started

    started = time.perf_counter()
    build_tree_index(
        graph,
        precomputed=precomputed,
        fanout=config.fanout,
        leaf_capacity=config.leaf_capacity,
    )
    tree_seconds = time.perf_counter() - started
    return {
        "kernel_tier": kernel_tier,
        "precompute_seconds": round(precompute_seconds, 4),
        "tree_seconds": round(tree_seconds, 4),
        "total_seconds": round(precompute_seconds + tree_seconds, 4),
        "_precomputed": precomputed,
    }


def measure_kernels(graph, config: EngineConfig) -> dict:
    """Per-kernel stdlib-vs-vector timings, equality asserted on every one.

    Measured as dispatched in production — on a graph this size every numpy
    path is active (the adaptive cutoffs only reroute small inputs).
    """
    from repro.fastgraph.vectorised import VectorWorkspace

    csr = freeze(graph)
    stdlib = CSRWorkspace(csr)
    vector = VectorWorkspace(csr)
    # Warm the lazily-built structures on both sides so the sections time
    # steady-state kernel work: the stdlib tier builds its entry tuples in
    # __init__, the vector tier builds its list caches / dense rows on
    # first use, and production amortises both over thousands of calls.
    vector.csr_lists()
    vector._dense_rows_map()
    theta = config.thresholds[0]
    sections: dict[str, dict] = {}

    def timed(fn):
        """Best wall time of three runs + the (deterministic) result."""
        best = float("inf")
        result = None
        for _ in range(3):
            started = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - started)
        return best, result

    def record(section: str, stdlib_seconds: float, vector_seconds: float) -> None:
        sections[section] = {
            "stdlib_seconds": round(stdlib_seconds, 4),
            "vector_seconds": round(vector_seconds, 4),
            "speedup": round(stdlib_seconds / max(vector_seconds, 1e-9), 3),
        }

    supports_std_seconds, supports_std = timed(stdlib.edge_supports)
    supports_vec_seconds, supports_vec = timed(vector.edge_supports)
    record("supports", supports_std_seconds, supports_vec_seconds)
    assert list(supports_std) == supports_vec.tolist()

    peel_std_seconds, peel_std = timed(lambda: stdlib.truss_peel(supports_std))
    peel_vec_seconds, peel_vec = timed(lambda: vector.truss_peel(supports_vec))
    record("peel", peel_std_seconds, peel_vec_seconds)
    assert list(peel_std[0]) == list(peel_vec[0])
    assert list(peel_std[1]) == list(peel_vec[1])

    # Timed passes run the bare kernel; the equivalence capture (dict
    # building per ball) happens in a separate untimed pass — BFS over a
    # fixed workspace is deterministic, so the re-run sees the same balls.
    centres = range(0, csr.num_vertices, max(1, csr.num_vertices // 400))

    def bfs_sweep(workspace):
        def run():
            for centre in centres:
                workspace.bfs_ball(centre, config.max_radius)
        return run

    bfs_std_seconds, _ = timed(bfs_sweep(stdlib))
    bfs_vec_seconds, _ = timed(bfs_sweep(vector))
    record("bfs", bfs_std_seconds, bfs_vec_seconds)
    balls_std = []
    for centre in centres:
        order = stdlib.bfs_ball(centre, config.max_radius)
        balls_std.append({v: stdlib.dist[v] for v in order})
        order = vector.bfs_ball(centre, config.max_radius)
        ball_vec = {int(v): int(vector.dist[v]) for v in list(order)}
        assert balls_std[-1] == ball_vec, f"bfs ball diverged at centre {centre}"

    seeds = [
        sorted(ball, key=ball.get)[: min(len(ball), 8)]
        for ball in balls_std[:120]
        if ball
    ]
    propagate_std_seconds, labels_std = timed(
        lambda: [stdlib.propagate(list(group), theta) for group in seeds]
    )
    propagate_vec_seconds, labels_vec = timed(
        lambda: [vector.propagate(list(group), theta) for group in seeds]
    )
    record("propagation", propagate_std_seconds, propagate_vec_seconds)
    assert labels_std == labels_vec

    return sections


def _fingerprint(result):
    return tuple((c.center, c.vertices, c.score) for c in result)


def assert_answers_identical(graph) -> None:
    """TopL/DTopL answers must agree across tiers before numbers are written."""
    engines = {
        tier: InfluentialCommunityEngine.build(
            graph.copy(),
            config=EngineConfig(
                max_radius=2,
                thresholds=(0.1, 0.3),
                backend="fast",
                kernel_tier=tier,
            ),
            validate=False,
        )
        for tier in ("stdlib", "vector")
    }
    query = make_topl_query({"music", "fashion", "skincare"}, k=3, radius=2, theta=0.1, top_l=5)
    dquery = make_dtopl_query(
        {"music", "fashion", "skincare"}, k=3, radius=2, theta=0.1, top_l=3, candidate_factor=2
    )
    topl = {tier: _fingerprint(e.topl(query)) for tier, e in engines.items()}
    assert topl["stdlib"] == topl["vector"], "TopL answers diverged across tiers"
    dtopl = {tier: e.dtopl(dquery) for tier, e in engines.items()}
    assert _fingerprint(dtopl["stdlib"]) == _fingerprint(dtopl["vector"])
    assert dtopl["stdlib"].diversity_score == dtopl["vector"].diversity_score


def _network_section(graph, config: EngineConfig, best: dict) -> dict:
    speedup = best["stdlib"]["total_seconds"] / max(best["vector"]["total_seconds"], 1e-9)
    return {
        "name": graph.name,
        "num_vertices": graph.num_vertices(),
        "num_edges": graph.num_edges(),
        "config": config.describe(),
        "end_to_end": {
            tier: {k: v for k, v in measurement.items() if not k.startswith("_")}
            for tier, measurement in best.items()
        },
        "speedup_vector_vs_stdlib": round(speedup, 3),
    }


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
pytestmark = pytest.mark.skipif(not NUMPY_AVAILABLE, reason="vector tier needs numpy")


@pytest.fixture(scope="module")
def bench_network():
    return build_bench_network()


@pytest.fixture(scope="module")
def tier_builds(bench_network):
    return (
        measure_index_build(bench_network, _BENCH_CONFIG, "stdlib"),
        measure_index_build(bench_network, _BENCH_CONFIG, "vector"),
    )


def test_tiers_build_identical_indexes(tier_builds):
    """Correctness gate: bit-identical records, whatever the timings say."""
    stdlib, vector = tier_builds
    assert_precomputed_equal(vector["_precomputed"], stdlib["_precomputed"])


def test_tier_answers_identical(bench_network):
    assert_answers_identical(bench_network)


def test_vector_tier_is_faster(tier_builds):
    """Speedup floor, asserted only at full benchmark scale.

    Same policy as ``bench_index_build``: a single timing pair on a shrunken
    CI smoke network is noise, so the committed >= 2x number lives in
    ``BENCH_vector.json`` via the best-of-N standalone recorder.
    """
    from benchmarks.bench_index_build import NUM_COMMUNITIES

    if NUM_COMMUNITIES < 14:
        pytest.skip(
            "speedup is only meaningful at full scale "
            f"(REPRO_BENCH_FASTCORE_COMMUNITIES={NUM_COMMUNITIES} < 14)"
        )
    stdlib, vector = tier_builds
    speedup = stdlib["total_seconds"] / max(vector["total_seconds"], 1e-9)
    assert speedup > 1.5, f"vector tier only {speedup:.2f}x over stdlib"


# --------------------------------------------------------------------------- #
# standalone baseline recorder
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3, help="keep the best of N runs")
    parser.add_argument(
        "--powerlaw-repeats", type=int, default=1,
        help="repeats for the (slow) power-law end-to-end build",
    )
    parser.add_argument("--out", default=None, help="write the JSON baseline here")
    args = parser.parse_args(argv)

    if not NUMPY_AVAILABLE:
        print("numpy unavailable: the vector tier cannot be benchmarked", file=sys.stderr)
        return 1

    bench_graph = build_bench_network()
    print(
        f"bench network: |V| = {bench_graph.num_vertices()}, "
        f"|E| = {bench_graph.num_edges()}"
    )
    best_bench: dict[str, dict] = {}
    for attempt in range(args.repeats):
        for tier in ("stdlib", "vector"):
            measurement = measure_index_build(bench_graph, _BENCH_CONFIG, tier)
            if (
                tier not in best_bench
                or measurement["total_seconds"] < best_bench[tier]["total_seconds"]
            ):
                best_bench[tier] = measurement
            print(
                f"run {attempt + 1} {tier:7s}: precompute "
                f"{measurement['precompute_seconds']:.3f}s + tree "
                f"{measurement['tree_seconds']:.3f}s = {measurement['total_seconds']:.3f}s"
            )
    assert_precomputed_equal(
        best_bench["vector"]["_precomputed"], best_bench["stdlib"]["_precomputed"]
    )
    assert_answers_identical(bench_graph)
    print("equivalence gate: records and TopL/DTopL answers identical across tiers")
    bench_speedup = (
        best_bench["stdlib"]["total_seconds"] / best_bench["vector"]["total_seconds"]
    )
    print(f"index-build speedup (vector vs stdlib): {bench_speedup:.2f}x")
    if bench_speedup < 2.0:
        print("WARNING: below the committed 2x target", file=sys.stderr)

    powerlaw_graph = build_powerlaw_network()
    print(
        f"power-law network: |V| = {powerlaw_graph.num_vertices()}, "
        f"|E| = {powerlaw_graph.num_edges()}"
    )
    kernels = measure_kernels(powerlaw_graph, _POWERLAW_CONFIG)
    for section, numbers in kernels.items():
        print(
            f"kernel {section:11s}: stdlib {numbers['stdlib_seconds']:.3f}s, "
            f"vector {numbers['vector_seconds']:.3f}s = {numbers['speedup']:.2f}x"
        )
    best_powerlaw: dict[str, dict] = {}
    for attempt in range(args.powerlaw_repeats):
        for tier in ("stdlib", "vector"):
            measurement = measure_index_build(powerlaw_graph, _POWERLAW_CONFIG, tier)
            if (
                tier not in best_powerlaw
                or measurement["total_seconds"] < best_powerlaw[tier]["total_seconds"]
            ):
                best_powerlaw[tier] = measurement
            print(
                f"run {attempt + 1} {tier:7s}: power-law build "
                f"{measurement['total_seconds']:.3f}s"
            )
    assert_precomputed_equal(
        best_powerlaw["vector"]["_precomputed"], best_powerlaw["stdlib"]["_precomputed"]
    )
    print("equivalence gate: power-law records identical across tiers")

    report = {
        # equivalence=True: bit-identical records + identical answers asserted above.
        **bench_envelope(
            "vector_kernels",
            seed=GRAPH_SEED,
            speedup_factor=bench_speedup,
            equivalence=True,
        ),
        "numpy_version": NUMPY_VERSION,
        "networks": {
            "fastcore": _network_section(bench_graph, _BENCH_CONFIG, best_bench),
            "powerlaw": {
                **_network_section(powerlaw_graph, _POWERLAW_CONFIG, best_powerlaw),
                "kernels": kernels,
            },
        },
        "repeats": args.repeats,
        "speedup_vector_vs_stdlib": round(bench_speedup, 3),
        "equivalence_gate": (
            "bit-identical records and TopL/DTopL answers asserted in-process"
        ),
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
