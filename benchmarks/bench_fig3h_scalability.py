"""Figure 3(h) — TopL-ICDE scalability with the graph size |V(G)|.

The paper sweeps |V(G)| from 10K to 1M and observes smoothly increasing wall
clock (0.51 s → 255.62 s).  Pure-Python benchmark loops cannot run those sizes,
so the bench sweeps a geometric ladder of scaled sizes (default 100 → 800
vertices); the expected *shape* — monotone, roughly polynomial growth — is the
reproduction target (recorded in EXPERIMENTS.md).
"""

import os

import pytest

from repro.core.engine import InfluentialCommunityEngine
from repro.graph.datasets import synthetic_small_world
from repro.workloads.queries import QueryWorkload

from benchmarks.conftest import BENCH_CONFIG, BENCH_ROUNDS, default_topl_query

#: Scaled-down |V(G)| ladder (override with REPRO_BENCH_SCALABILITY_SIZES="100,200,...").
_DEFAULT_SIZES = "100,200,400,800"
SIZES = tuple(
    int(token)
    for token in os.environ.get("REPRO_BENCH_SCALABILITY_SIZES", _DEFAULT_SIZES).split(",")
)
DISTRIBUTIONS = ("uniform", "gaussian", "zipf")


@pytest.fixture(scope="module")
def scalability_engines():
    """Graphs + engines for every (distribution, size) pair of the sweep."""
    engines = {}
    for distribution in DISTRIBUTIONS:
        for size in SIZES:
            graph = synthetic_small_world(distribution, num_vertices=size, rng=41)
            engines[(distribution, size)] = (
                graph,
                InfluentialCommunityEngine.build(graph, config=BENCH_CONFIG, validate=False),
            )
    return engines


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("size", SIZES)
def test_fig3h_scalability(benchmark, scalability_engines, distribution, size):
    graph, engine = scalability_engines[(distribution, size)]
    workload = QueryWorkload(graph, rng=97)
    query = default_topl_query(workload)
    result = benchmark.pedantic(engine.topl, args=(query,), rounds=BENCH_ROUNDS, iterations=1)
    benchmark.extra_info.update(
        {
            "dataset": distribution,
            "|V(G)|": graph.num_vertices(),
            "|E(G)|": graph.num_edges(),
            "communities": len(result),
        }
    )
    # Paper shape: the query remains answerable at every size (time grows smoothly).
    assert result.statistics.elapsed_seconds >= 0.0
