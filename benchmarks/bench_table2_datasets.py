"""Table II — statistics of the evaluation datasets.

The paper reports |V(G)| and |E(G)| for DBLP and Amazon; this bench computes
the same statistics (plus clustering/triangle counts) for the scaled stand-ins
and the three synthetic graphs, and times the statistics pass itself.
"""

import pytest

from repro.graph.datasets import PAPER_DATASET_SIZES, dataset_names
from repro.graph.statistics import compute_statistics
from repro.workloads.reporting import format_table

from benchmarks.conftest import BENCH_ROUNDS


@pytest.mark.parametrize("dataset", dataset_names())
def test_table2_dataset_statistics(benchmark, bench_graphs, dataset):
    graph = bench_graphs[dataset]
    statistics = benchmark.pedantic(
        compute_statistics, args=(graph,), rounds=BENCH_ROUNDS, iterations=1
    )
    row = statistics.as_row()
    benchmark.extra_info.update(row)
    benchmark.extra_info["paper_size"] = PAPER_DATASET_SIZES.get(
        dataset.upper() if dataset in ("dblp",) else dataset.capitalize(), {}
    )
    assert statistics.num_vertices > 0
    assert statistics.num_edges > 0


def test_table2_report(benchmark, bench_graphs, capsys):
    """Print the Table II analogue for all five datasets."""
    rows = benchmark.pedantic(
        lambda: [compute_statistics(graph).as_row() for graph in bench_graphs.values()],
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table(rows, title="Table II (stand-in scale): dataset statistics"))
        print(
            "paper-scale originals: DBLP 317,080 / 1,049,866 — Amazon 334,863 / 925,872"
        )
    assert len(rows) == 5
