"""Serving-layer throughput: queries/sec at worker counts {1, 2, 4}, cache on/off.

This bench establishes the first serving-throughput numbers in the repo's
trajectory.  It measures the :class:`repro.serve.batch.BatchQueryEngine` over
a mixed TopL/DTopL batch on the synthetic small-world dataset:

* **workers sweep** (cache off) — the honest parallel-scaling measurement;
  every query is executed.  Speedup tracks the machine's core count: on the
  multi-core CI runners workers=4 clears 2x over workers=1, on a single-core
  box the pool only adds overhead (the recorded JSON carries ``cpu_count`` so
  baselines stay comparable).
* **cache sweep** (workers=1) — a cold round followed by a warm round over
  the same batch; the warm round is served from the result cache.
* **sharded sweep** — the same batch through
  :class:`repro.service.sharded.ShardedCommunityService` (2 worker
  processes), with answers asserted bit-identical to the unsharded facade;
  like the workers sweep, the speedup gate only runs on multi-core boxes
  while the equivalence gate always runs (inline mode).

Run as a pytest-benchmark module (``pytest benchmarks/bench_serving_throughput.py``)
or standalone to record a JSON baseline::

    python benchmarks/bench_serving_throughput.py --out BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.graph.datasets import synthetic_small_world
from repro.workloads.queries import QueryWorkload
from repro.workloads.reporting import bench_envelope

#: Batch size of the throughput measurement (32 mixed queries by default).
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_SERVING_BATCH", "32"))
#: Worker counts of the scaling sweep.
WORKER_COUNTS = (1, 2, 4)
#: Seed for the bench graph (the query workload is seeded separately, 97).
GRAPH_SEED = 41

_SERVING_CONFIG = EngineConfig(max_radius=2, thresholds=(0.1, 0.2, 0.3))


def build_serving_fixture(num_vertices: int, batch_size: int):
    """Graph + engine + mixed query batch shared by every measurement."""
    graph = synthetic_small_world("uniform", num_vertices=num_vertices, rng=GRAPH_SEED)
    engine = InfluentialCommunityEngine.build(
        graph, config=_SERVING_CONFIG, validate=False
    )
    workload = QueryWorkload(graph, rng=97)
    num_dtopl = max(batch_size // 4, 1)
    queries = workload.topl_batch(batch_size - num_dtopl, num_keywords=5, k=4, top_l=5)
    queries += workload.dtopl_batch(num_dtopl, num_keywords=5, k=4, top_l=5)
    return graph, engine, queries


def build_backend_engine(graph, backend: str):
    """Build the serving engine on a specific graph-core backend."""
    config = EngineConfig(
        max_radius=_SERVING_CONFIG.max_radius,
        thresholds=_SERVING_CONFIG.thresholds,
        backend=backend,
    )
    return InfluentialCommunityEngine.build(graph, config=config, validate=False)


def measure_backends(graph, queries) -> dict:
    """Sequential cache-off serving on each graph-core backend.

    Records offline build seconds and batch queries/sec per backend, and
    asserts the answers are identical — the backend switch is a pure
    performance knob, never a semantics knob.
    """
    measurements = {}
    fingerprints = {}
    for backend in ("reference", "fast"):
        started = time.perf_counter()
        engine = build_backend_engine(graph, backend)
        build_seconds = time.perf_counter() - started
        serving = engine.serve(result_cache_capacity=0, propagation_cache_capacity=0)
        batch = serving.run(queries)
        measurements[backend] = {
            "offline_build_seconds": round(build_seconds, 4),
            "queries_per_second": round(batch.statistics.queries_per_second, 4),
            "elapsed_seconds": round(batch.statistics.elapsed_seconds, 4),
        }
        fingerprints[backend] = [
            [(c.vertices, c.score) for c in result] for result in batch
        ]
    assert fingerprints["fast"] == fingerprints["reference"], (
        "fast backend served different answers than reference"
    )
    reference_build = measurements["reference"]["offline_build_seconds"]
    fast_build = measurements["fast"]["offline_build_seconds"]
    if fast_build > 0:
        measurements["offline_build_speedup"] = round(reference_build / fast_build, 3)
    return measurements


def _measure(engine, queries, workers: int, cache: bool) -> dict:
    capacity = None if cache else 0
    serving = engine.serve(
        workers=workers,
        result_cache_capacity=capacity,
        propagation_cache_capacity=capacity,
    )
    rounds = []
    for _ in range(2 if cache else 1):
        batch = serving.run(queries)
        rounds.append(batch.statistics.as_dict())
    return {
        "workers": workers,
        "cache": cache,
        # Recorded per measurement, not just per file: parallel numbers are
        # meaningless without knowing how many cores the run actually had
        # (the first recorded baseline showed 0.83x at workers=4 — on a
        # 1-core box, which is expected, not a regression).
        "cpu_count": os.cpu_count(),
        "rounds": rounds,
        "caches": serving.cache_statistics(),
    }


def _batch_wire_answers(service, session: str, queries) -> list:
    """Answer-bearing wire form of one batch (work counters stripped)."""
    from repro.service.schema import BatchRequest

    response = service.batch(BatchRequest(session=session, queries=tuple(queries)))
    documents = json.loads(json.dumps(list(response.results)))
    for document in documents:
        document.pop("statistics", None)
        for key in ("elapsed_seconds", "elapsed_ms"):
            document.pop(key, None)
    return documents


def measure_sharded(graph, queries, num_shards: int = 2, mode: str = "process") -> dict:
    """The batch through the sharded facade, equivalence-gated.

    Both facades serve cache-off so every query fans out; the sharded
    answers must match the unsharded facade's bit-for-bit once the
    distributed work counters are stripped.
    """
    from repro.serve.batch import ServingConfig
    from repro.service.facade import CommunityService
    from repro.service.sharded import ShardedCommunityService

    cache_off = ServingConfig(result_cache_capacity=0, propagation_cache_capacity=0)
    plain = CommunityService(serving_config=cache_off)
    plain.adopt(build_backend_engine(graph, "reference"), session="bench")
    started = time.perf_counter()
    expected = _batch_wire_answers(plain, "bench", queries)
    unsharded_seconds = time.perf_counter() - started

    with ShardedCommunityService(
        num_shards=num_shards, mode=mode, serving_config=cache_off
    ) as sharded:
        sharded.adopt(build_backend_engine(graph, "reference"), session="bench")
        started = time.perf_counter()
        answers = _batch_wire_answers(sharded, "bench", queries)
        sharded_seconds = time.perf_counter() - started

    assert answers == expected, "sharded facade served different answers"
    return {
        "num_shards": num_shards,
        "mode": mode,
        "cpu_count": os.cpu_count(),
        "batch_size": len(queries),
        "equivalence": True,
        "unsharded_seconds": round(unsharded_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "speedup": round(unsharded_seconds / sharded_seconds, 3)
        if sharded_seconds > 0
        else 0.0,
    }


# --------------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def serving_fixture():
    from benchmarks.conftest import BENCH_VERTICES

    return build_serving_fixture(BENCH_VERTICES, BATCH_SIZE)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_throughput_workers(benchmark, serving_fixture, workers):
    """Queries/sec of the uncached batch path at each worker count."""
    from benchmarks.conftest import BENCH_ROUNDS

    graph, engine, queries = serving_fixture
    serving = engine.serve(
        workers=workers, result_cache_capacity=0, propagation_cache_capacity=0
    )
    batch = benchmark.pedantic(
        serving.run, args=(queries,), rounds=BENCH_ROUNDS, iterations=1
    )
    benchmark.extra_info.update(
        {
            "|V(G)|": graph.num_vertices(),
            "batch_size": len(queries),
            "workers": workers,
            "mode": batch.statistics.mode,
            "queries_per_second": round(batch.statistics.queries_per_second, 2),
            "cpu_count": os.cpu_count(),
        }
    )
    assert len(batch) == len(queries)
    assert batch.statistics.executed == len(queries)


def test_throughput_cache_warm_vs_cold(benchmark, serving_fixture):
    """Warm rounds answered from the result cache vs cold execution."""
    from benchmarks.conftest import BENCH_ROUNDS

    graph, engine, queries = serving_fixture
    serving = engine.serve()
    cold = serving.run(queries)

    warm = benchmark.pedantic(
        serving.run, args=(queries,), rounds=BENCH_ROUNDS, iterations=1
    )
    benchmark.extra_info.update(
        {
            "|V(G)|": graph.num_vertices(),
            "batch_size": len(queries),
            "cold_qps": round(cold.statistics.queries_per_second, 2),
            "warm_qps": round(warm.statistics.queries_per_second, 2),
        }
    )
    assert warm.statistics.result_cache_hits == len(queries)
    assert warm.statistics.executed == 0
    # The warm round skips the online algorithm entirely, so it must beat the
    # cold round by a wide margin even on loaded machines.
    assert warm.statistics.elapsed_seconds < cold.statistics.elapsed_seconds


def test_parallel_speedup_on_multicore(serving_fixture):
    """workers=4 must beat workers=1 — but only where that can be true.

    On a 1-core box the pool adds pure overhead (the recorded 0.83x in
    ``BENCH_serving.json`` is exactly that), and a tiny batch cannot amortise
    pool start-up; both cases are *skipped*, not reported as regressions.
    The PR bench smoke uses batch 8, so this assertion executes in the
    nightly full-scale bench job (multi-core runner, batch 32) and in local
    full-scale runs.
    """
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        pytest.skip(f"parallel speedup needs >= 2 cores (cpu_count={cpu_count})")
    _, engine, queries = serving_fixture
    if len(queries) < 16:
        pytest.skip(f"batch of {len(queries)} too small to amortise pool start-up")
    sequential = engine.serve(result_cache_capacity=0, propagation_cache_capacity=0)
    parallel = engine.serve(result_cache_capacity=0, propagation_cache_capacity=0)
    baseline = sequential.run(queries, workers=1)
    scaled = parallel.run(queries, workers=4)
    speedup = baseline.statistics.elapsed_seconds / scaled.statistics.elapsed_seconds
    assert speedup > 1.05, (
        f"workers=4 gave {speedup:.2f}x over workers=1 on {cpu_count} cores"
    )


def test_sharded_equivalence_smoke(serving_fixture):
    """Sharded answers must be bit-identical to unsharded (always runs).

    Inline mode keeps this on the merge code path without worker processes,
    so the gate holds on 1-core boxes and in the PR bench smoke alike.
    """
    graph, _, queries = serving_fixture
    measurement = measure_sharded(
        graph, queries[: min(len(queries), 8)], num_shards=3, mode="inline"
    )
    assert measurement["equivalence"]


def test_sharded_speedup_on_multicore(serving_fixture):
    """2 shard processes must beat the unsharded facade — where they can.

    The same skip discipline as ``test_parallel_speedup_on_multicore``: on a
    1-core box shard processes only add serialization overhead (recorded
    honestly in ``BENCH_serving.json``), and a tiny batch cannot amortise
    worker start-up; neither is a regression.
    """
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        pytest.skip(f"sharded speedup needs >= 2 cores (cpu_count={cpu_count})")
    graph, _, queries = serving_fixture
    if len(queries) < 16:
        pytest.skip(f"batch of {len(queries)} too small to amortise worker start-up")
    measurement = measure_sharded(graph, queries, num_shards=2, mode="process")
    assert measurement["equivalence"]
    assert measurement["speedup"] > 1.0, (
        f"2 shards gave {measurement['speedup']:.2f}x over unsharded "
        f"on {cpu_count} cores"
    )


def test_backend_serving_identical_answers(serving_fixture):
    """Both graph-core backends must serve identical batches (CI smoke)."""
    graph, _, queries = serving_fixture
    measurements = measure_backends(graph, queries[: min(len(queries), 8)])
    assert set(measurements) >= {"reference", "fast"}


def test_parallel_results_identical_to_sequential(serving_fixture):
    """The correctness gate behind the throughput numbers (CI smoke)."""
    _, engine, queries = serving_fixture
    sequential = engine.serve(result_cache_capacity=0).run(queries)
    parallel = engine.serve(result_cache_capacity=0).run(queries, workers=4)
    fingerprints = [
        [(c.vertices, round(c.score, 9)) for c in result] for result in sequential
    ]
    assert [
        [(c.vertices, round(c.score, 9)) for c in result] for result in parallel
    ] == fingerprints


# --------------------------------------------------------------------------- #
# standalone baseline recorder
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=400)
    parser.add_argument("--batch", type=int, default=BATCH_SIZE)
    parser.add_argument("--out", default=None, help="write the JSON baseline here")
    args = parser.parse_args(argv)

    graph, engine, queries = build_serving_fixture(args.vertices, args.batch)
    measurements = []
    for workers in WORKER_COUNTS:
        measurement = _measure(engine, queries, workers=workers, cache=False)
        measurements.append(measurement)
        qps = measurement["rounds"][0]["queries_per_second"]
        print(f"workers={workers} cache=off: {qps:.2f} queries/sec")
    cached = _measure(engine, queries, workers=1, cache=True)
    measurements.append(cached)
    print(
        f"workers=1 cache=on: cold {cached['rounds'][0]['queries_per_second']:.2f} "
        f"-> warm {cached['rounds'][1]['queries_per_second']:.2f} queries/sec"
    )

    backends = measure_backends(graph, queries)
    print(
        "backend comparison (sequential, cache off): "
        f"reference {backends['reference']['queries_per_second']:.2f} q/s "
        f"(build {backends['reference']['offline_build_seconds']:.2f}s) vs "
        f"fast {backends['fast']['queries_per_second']:.2f} q/s "
        f"(build {backends['fast']['offline_build_seconds']:.2f}s, "
        f"{backends.get('offline_build_speedup', '?')}x build speedup)"
    )

    baseline = measurements[0]["rounds"][0]["queries_per_second"]
    parallel = measurements[-2]["rounds"][0]["queries_per_second"]
    workers_speedup = round(parallel / baseline, 3) if baseline > 0 else 0.0
    print(f"workers=4 speedup over workers=1: {workers_speedup}x")

    sharded = measure_sharded(graph, queries, num_shards=2, mode="process")
    print(
        f"sharded (2 shard processes): {sharded['speedup']}x over unsharded "
        f"on {sharded['cpu_count']} core(s), answers identical"
    )

    report = {
        # equivalence=True: measure_backends asserted identical answers above.
        **bench_envelope(
            "serving_throughput",
            seed=GRAPH_SEED,
            speedup_factor=workers_speedup,
            equivalence=True,
        ),
        "dataset": graph.name,
        "num_vertices": graph.num_vertices(),
        "num_edges": graph.num_edges(),
        "batch_size": len(queries),
        "measurements": measurements,
        "backends": backends,
        "speedup_workers_4_vs_1": workers_speedup,
        "sharded": sharded,
        "speedup_sharded_2_vs_unsharded": sharded["speedup"],
    }

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
