"""Index build: array-backed ``fast`` backend vs the dict-based reference.

The offline phase (Algorithm 2 pre-computation + tree construction) is the
single most expensive thing this library does, and it is pure scan-heavy
graph computation — triangle counting, truss peeling, hop-ball BFS, MIA
max-product propagation.  This bench builds the same index on both backends
over the repo's 5k-edge bench network and records the speedup in
``BENCH_fastcore.json``; the committed target is **>= 5x**.

The network is a planted-community graph (~14 communities of 50, ~5.2k
edges) with *weighted-cascade-scale* propagation probabilities (0.05–0.3,
the magnitude IC/MIA papers assign as ~1/degree), which is the regime the
paper's datasets live in.  Dense-enough communities to hold k-trusses plus
short influence horizons is exactly the shape that exercises every kernel:
triangle counting and truss peeling over ~15-degree vertices, three nested
hop balls per centre, and a truncated propagation per centre and radius.

Correctness is part of the bench: the two builds must produce bit-identical
pre-computed records (asserted here and, more broadly, by
``tests/fastgraph``) — the speedup is only meaningful if the fast backend
computes the same thing.

Run as a pytest module (``pytest benchmarks/bench_index_build.py``) or
standalone to record the JSON baseline::

    python benchmarks/bench_index_build.py --out BENCH_fastcore.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import pytest

from repro.core.config import EngineConfig
from repro.graph.generators import planted_community_graph
from repro.graph.keyword_assignment import assign_keywords
from repro.index.precompute import precompute
from repro.index.tree import build_tree_index
from repro.workloads.reporting import bench_envelope

#: Communities in the bench network (scaled down under
#: REPRO_BENCH_FASTCORE_COMMUNITIES for the CI smoke).
NUM_COMMUNITIES = int(os.environ.get("REPRO_BENCH_FASTCORE_COMMUNITIES", "14"))
#: Vertices per community.
COMMUNITY_SIZE = int(os.environ.get("REPRO_BENCH_FASTCORE_COMMUNITY_SIZE", "50"))
#: Weighted-cascade-scale propagation probabilities (~1/degree).
WEIGHT_RANGE = (0.05, 0.3)
#: Seed for the bench network (graph, weights and keywords).
GRAPH_SEED = 13

_CONFIG = EngineConfig(max_radius=3, thresholds=(0.1, 0.2, 0.3))


def build_bench_network(
    num_communities: int = NUM_COMMUNITIES,
    community_size: int = COMMUNITY_SIZE,
    rng: int = GRAPH_SEED,
):
    """The ~5k-edge planted-community network both backends build over."""
    graph = planted_community_graph(
        [community_size] * num_communities,
        intra_probability=0.3,
        inter_probability=0.0005,
        weight_range=WEIGHT_RANGE,
        rng=rng,
        name=f"fastcore-{num_communities}x{community_size}",
    )
    assign_keywords(graph, keywords_per_vertex=3, domain_size=50, rng=rng)
    return graph


def measure_index_build(graph, backend: str) -> dict:
    """Time the offline phase (precompute + tree build) on one backend."""
    started = time.perf_counter()
    precomputed = precompute(
        graph,
        max_radius=_CONFIG.max_radius,
        thresholds=_CONFIG.thresholds,
        num_bits=_CONFIG.num_bits,
        backend=backend,
    )
    precompute_seconds = time.perf_counter() - started

    started = time.perf_counter()
    index = build_tree_index(
        graph,
        precomputed=precomputed,
        fanout=_CONFIG.fanout,
        leaf_capacity=_CONFIG.leaf_capacity,
    )
    tree_seconds = time.perf_counter() - started
    return {
        "backend": backend,
        "precompute_seconds": round(precompute_seconds, 4),
        "tree_seconds": round(tree_seconds, 4),
        "total_seconds": round(precompute_seconds + tree_seconds, 4),
        "_precomputed": precomputed,
        "_index": index,
    }


def assert_precomputed_equal(fast, reference) -> None:
    """The equivalence gate: both backends computed the same index inputs."""
    assert fast.global_edge_support == reference.global_edge_support
    assert set(fast.vertex_aggregates) == set(reference.vertex_aggregates)
    for vertex, ours in fast.vertex_aggregates.items():
        theirs = reference.vertex_aggregates[vertex]
        assert ours.keyword_bitvector == theirs.keyword_bitvector, vertex
        assert ours.center_trussness == theirs.center_trussness, vertex
        assert set(ours.per_radius) == set(theirs.per_radius), vertex
        for radius in theirs.per_radius:
            mine = ours.per_radius[radius]
            other = theirs.per_radius[radius]
            assert mine.bitvector == other.bitvector, (vertex, radius)
            assert mine.support_upper_bound == other.support_upper_bound, (vertex, radius)
            assert mine.score_bounds == other.score_bounds, (vertex, radius)


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def bench_network():
    return build_bench_network()


@pytest.fixture(scope="module")
def both_builds(bench_network):
    return (
        measure_index_build(bench_network, "reference"),
        measure_index_build(bench_network, "fast"),
    )


def test_backends_build_identical_indexes(both_builds):
    """Correctness gate: bit-identical records, whatever the timings say."""
    reference, fast = both_builds
    assert_precomputed_equal(fast["_precomputed"], reference["_precomputed"])


def test_fast_backend_is_faster(both_builds):
    """Speedup floor, asserted only at full benchmark scale.

    A single timing pair on a shrunken smoke network is noise on shared CI
    runners (the same footgun the serving bench's parallel-speedup check
    avoids), so below full scale this skips — the equivalence gate above is
    the CI assertion, and the committed >= 5x number lives in
    ``BENCH_fastcore.json`` via the best-of-N standalone recorder.
    """
    if NUM_COMMUNITIES < 14:
        pytest.skip(
            "speedup is only meaningful at full scale "
            f"(REPRO_BENCH_FASTCORE_COMMUNITIES={NUM_COMMUNITIES} < 14)"
        )
    reference, fast = both_builds
    speedup = reference["total_seconds"] / max(fast["total_seconds"], 1e-9)
    assert speedup > 2.0, f"fast backend only {speedup:.2f}x over reference"


def test_index_build_benchmark(benchmark, bench_network):
    """pytest-benchmark hook for the fast backend (tracked over time)."""
    from benchmarks.conftest import BENCH_ROUNDS

    result = benchmark.pedantic(
        measure_index_build,
        args=(bench_network, "fast"),
        rounds=BENCH_ROUNDS,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "|V(G)|": bench_network.num_vertices(),
            "|E(G)|": bench_network.num_edges(),
            "backend": "fast",
            "total_seconds": result["total_seconds"],
        }
    )


# --------------------------------------------------------------------------- #
# standalone baseline recorder
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--communities", type=int, default=NUM_COMMUNITIES)
    parser.add_argument("--community-size", type=int, default=COMMUNITY_SIZE)
    parser.add_argument("--repeats", type=int, default=3, help="keep the best of N runs")
    parser.add_argument("--out", default=None, help="write the JSON baseline here")
    args = parser.parse_args(argv)

    graph = build_bench_network(args.communities, args.community_size)
    print(f"bench network: |V| = {graph.num_vertices()}, |E| = {graph.num_edges()}")

    best: dict[str, dict] = {}
    for attempt in range(args.repeats):
        for backend in ("reference", "fast"):
            measurement = measure_index_build(graph, backend)
            if (
                backend not in best
                or measurement["total_seconds"] < best[backend]["total_seconds"]
            ):
                best[backend] = measurement
            print(
                f"run {attempt + 1} {backend:9s}: precompute "
                f"{measurement['precompute_seconds']:.3f}s + tree "
                f"{measurement['tree_seconds']:.3f}s = {measurement['total_seconds']:.3f}s"
            )

    assert_precomputed_equal(best["fast"]["_precomputed"], best["reference"]["_precomputed"])
    print("equivalence gate: fast records are bit-identical to reference")

    speedup = best["reference"]["total_seconds"] / best["fast"]["total_seconds"]
    print(f"index-build speedup (fast vs reference): {speedup:.2f}x")
    if speedup < 5.0:
        print("WARNING: below the committed 5x target", file=sys.stderr)

    report = {
        # equivalence=True: bit-identical records were asserted above.
        **bench_envelope(
            "fastcore_index_build",
            seed=GRAPH_SEED,
            speedup_factor=speedup,
            equivalence=True,
        ),
        "network": {
            "name": graph.name,
            "num_vertices": graph.num_vertices(),
            "num_edges": graph.num_edges(),
            "communities": args.communities,
            "community_size": args.community_size,
            "weight_range": list(WEIGHT_RANGE),
        },
        "config": _CONFIG.describe(),
        "repeats": args.repeats,
        "measurements": {
            backend: {
                key: value
                for key, value in measurement.items()
                if not key.startswith("_")
            }
            for backend, measurement in best.items()
        },
        "speedup_fast_vs_reference": round(speedup, 3),
        "equivalence_gate": "bit-identical records asserted in-process",
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
