"""Dynamic updates: incremental ``apply_updates`` vs full offline rebuild.

The dynamic-workload scenario: a community-structured social network (~5k
edges) receives a 1% edit batch of localized churn — insertions and deletions
concentrated around one active community, the shape real update streams have
— and the engine patches trussness, pre-computed records and the tree index
incrementally.  The measurement compares that against re-running the offline
phase (Algorithm 2 + index build) on the mutated graph, which is what the
build-once engine had to do before ``repro.dynamic`` existed.

A second, *scattered* batch (edits spread uniformly over the whole graph)
taints most centre vertices, so the engine's damage threshold correctly
falls back to the rebuild path — that measurement is recorded too, because
the fallback is part of the contract, not a failure.

Run as a pytest module (``pytest benchmarks/bench_dynamic_updates.py``) or
standalone to record a JSON baseline::

    python benchmarks/bench_dynamic_updates.py --out BENCH_dynamic.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import random_update_batch
from repro.graph.generators import planted_community_graph
from repro.graph.keyword_assignment import assign_keywords
from repro.workloads.queries import QueryWorkload
from repro.workloads.reporting import bench_envelope

#: Communities in the planted graph (scaled down under REPRO_BENCH_DYNAMIC_COMMUNITIES).
NUM_COMMUNITIES = int(os.environ.get("REPRO_BENCH_DYNAMIC_COMMUNITIES", "40"))
#: Vertices per community.
COMMUNITY_SIZE = int(os.environ.get("REPRO_BENCH_DYNAMIC_COMMUNITY_SIZE", "50"))
#: Edit-batch size as a fraction of the edge count (the paper-scale scenario
#: uses 1%).
EDIT_FRACTION = 0.01
#: Seed for the planted graph, its keywords and the edit batches.
GRAPH_SEED = 13

_DYNAMIC_CONFIG = EngineConfig(max_radius=2, thresholds=(0.1, 0.2, 0.3))


def build_dynamic_fixture(
    num_communities: int = NUM_COMMUNITIES,
    community_size: int = COMMUNITY_SIZE,
    rng: int = GRAPH_SEED,
):
    """Planted-community graph (~5k edges at default scale) + built engine.

    Intra/inter probabilities are tuned so 40 communities of 50 vertices give
    ~4900 intra + ~100 bridge edges; the sparse bridges are what keeps an
    edit's influence footprint local.
    """
    graph = planted_community_graph(
        [community_size] * num_communities,
        intra_probability=0.1,
        inter_probability=0.00005,
        rng=rng,
        name=f"planted-{num_communities}x{community_size}",
    )
    assign_keywords(graph, keywords_per_vertex=3, domain_size=50, rng=rng)
    engine = InfluentialCommunityEngine.build(
        graph, config=_DYNAMIC_CONFIG, validate=False
    )
    return graph, engine


def localized_batch(graph, size: int, rng: int = 41):
    """A 1%-scale batch of churn concentrated around one community."""
    focus = next(iter(graph.vertices()))
    return random_update_batch(
        graph,
        size,
        rng=rng,
        insert_ratio=0.5,
        focus=focus,
        focus_radius=2,
        grow_probability=0.05,
        keyword_pool=tuple(sorted(graph.keyword_domain()))[:12],
    )


def scattered_batch(graph, size: int, rng: int = 43):
    """The same edit volume spread uniformly over the whole graph."""
    return random_update_batch(graph, size, rng=rng, insert_ratio=0.5)


def _fingerprint(result):
    return tuple((c.vertices, round(c.score, 9)) for c in result)


def _measure_incremental_vs_rebuild(graph, engine, batch) -> dict:
    """Apply ``batch`` incrementally, then time a rebuild on the result."""
    started = time.perf_counter()
    report = engine.apply_updates(batch, damage_threshold=1.0)
    incremental_seconds = time.perf_counter() - started

    started = time.perf_counter()
    rebuilt = InfluentialCommunityEngine.build(
        graph, config=_DYNAMIC_CONFIG, validate=False
    )
    rebuild_seconds = time.perf_counter() - started
    return {
        "report": report.as_dict(),
        "incremental_seconds": round(incremental_seconds, 4),
        "rebuild_seconds": round(rebuild_seconds, 4),
        "speedup": round(rebuild_seconds / incremental_seconds, 3)
        if incremental_seconds > 0
        else None,
        "rebuilt_engine": rebuilt,
    }


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def dynamic_fixture():
    scale = max(NUM_COMMUNITIES, 4)
    return build_dynamic_fixture(num_communities=scale)


def test_incremental_matches_rebuild_answers(dynamic_fixture):
    """The correctness gate: patched answers == rebuilt answers (CI smoke)."""
    graph, engine = dynamic_fixture
    batch = localized_batch(graph, max(graph.num_edges() // 100, 8))
    measurement = _measure_incremental_vs_rebuild(graph, engine, batch)
    rebuilt = measurement.pop("rebuilt_engine")
    assert measurement["report"]["mode"] == "incremental"

    workload = QueryWorkload(graph, rng=97)
    queries = workload.topl_batch(6, num_keywords=4, k=4, top_l=5)
    queries += workload.dtopl_batch(2, num_keywords=4, k=4, top_l=3)
    for query in queries[:6]:
        assert _fingerprint(engine.topl(query)) == _fingerprint(rebuilt.topl(query))
    for query in queries[6:]:
        assert _fingerprint(engine.dtopl(query)) == _fingerprint(rebuilt.dtopl(query))


def test_incremental_beats_rebuild_at_scale(dynamic_fixture):
    """The >= 5x criterion, asserted only at full benchmark scale.

    At smoke scale (a handful of communities) the constant costs of the
    affected-region analysis dominate and the ratio is meaningless, so the
    assertion is skipped rather than reported as a regression — the recorded
    BENCH_dynamic.json carries the full-scale number.
    """
    if NUM_COMMUNITIES < 20:
        pytest.skip(
            "speedup is only meaningful at full scale "
            f"(REPRO_BENCH_DYNAMIC_COMMUNITIES={NUM_COMMUNITIES} < 20)"
        )
    graph, engine = dynamic_fixture
    batch = localized_batch(graph, max(int(graph.num_edges() * EDIT_FRACTION), 8), rng=59)
    measurement = _measure_incremental_vs_rebuild(graph, engine, batch)
    measurement.pop("rebuilt_engine")
    assert measurement["report"]["mode"] == "incremental"
    assert measurement["speedup"] >= 5.0, measurement


def test_scattered_batch_falls_back_to_rebuild(dynamic_fixture):
    """Uniform churn taints most centres; the damage threshold must trip."""
    graph, engine = dynamic_fixture
    batch = scattered_batch(graph, max(graph.num_edges() // 100, 8))
    report = engine.apply_updates(batch, damage_threshold=0.2)
    assert report.mode == "rebuild"
    assert report.damage_ratio > 0.2


def measure_update_backends(
    num_communities: int = NUM_COMMUNITIES,
    community_size: int = COMMUNITY_SIZE,
    rng: int = 13,
) -> dict:
    """The same 1% localized batch through every update mode, equivalence-gated.

    Three measurements over identical copies of the bench network:

    * **reference-incremental** — ``apply_updates`` on the dict backend;
    * **fast-incremental** — ``apply_updates`` on the array backend: truss
      worklist over the ``DeltaCSR`` overlay, record refresh by the fast
      kernels, snapshot patched in place (no ``freeze()``);
    * **fast-rebuild** — a full fast-backend offline build of the mutated
      graph, i.e. what the fast backend paid per edit batch before
      incremental CSR maintenance landed.

    The exact-equivalence gate asserts all three leave bit-identical
    pre-computed records (the same gate ``bench_index_build.py`` uses).
    """
    try:  # pytest imports benches as a package; standalone runs do not.
        from benchmarks.bench_index_build import assert_precomputed_equal
    except ImportError:  # pragma: no cover - standalone `python benchmarks/...`
        from bench_index_build import assert_precomputed_equal

    graph = planted_community_graph(
        [community_size] * num_communities,
        intra_probability=0.1,
        inter_probability=0.00005,
        rng=rng,
        name=f"planted-{num_communities}x{community_size}",
    )
    assign_keywords(graph, keywords_per_vertex=3, domain_size=50, rng=rng)
    fast_config = EngineConfig(
        max_radius=_DYNAMIC_CONFIG.max_radius,
        thresholds=_DYNAMIC_CONFIG.thresholds,
        backend="fast",
    )
    reference_graph = graph.copy()
    fast_graph = graph.copy()
    reference_engine = InfluentialCommunityEngine.build(
        reference_graph, config=_DYNAMIC_CONFIG, validate=False
    )
    fast_engine = InfluentialCommunityEngine.build(
        fast_graph, config=fast_config, validate=False
    )
    edits = max(int(graph.num_edges() * EDIT_FRACTION), 8)
    batch = localized_batch(reference_graph, edits, rng=67)

    measurements: dict = {"edit_batch_size": edits}
    started = time.perf_counter()
    reference_report = reference_engine.apply_updates(batch, damage_threshold=1.0)
    measurements["reference_incremental_seconds"] = round(
        time.perf_counter() - started, 4
    )
    started = time.perf_counter()
    fast_report = fast_engine.apply_updates(batch, damage_threshold=1.0)
    measurements["fast_incremental_seconds"] = round(time.perf_counter() - started, 4)
    # The copy happens outside the timed window: the real fallback
    # (`_rebuild_offline`) rebuilds in place and never pays it.
    mutated_copy = fast_graph.copy()
    started = time.perf_counter()
    rebuilt_fast = InfluentialCommunityEngine.build(
        mutated_copy, config=fast_config, validate=False
    )
    measurements["fast_rebuild_seconds"] = round(time.perf_counter() - started, 4)

    assert reference_report.mode == "incremental", reference_report.mode
    assert fast_report.mode == "incremental", fast_report.mode
    measurements["fast_applied_mode"] = fast_report.applied_mode
    measurements["fast_overlay_dirt_ratio"] = round(fast_report.overlay_dirt_ratio, 4)
    # The exact-equivalence gate: all three paths computed the same records.
    assert_precomputed_equal(
        fast_engine.index.precomputed, reference_engine.index.precomputed
    )
    assert_precomputed_equal(
        fast_engine.index.precomputed, rebuilt_fast.index.precomputed
    )
    fast_seconds = measurements["fast_incremental_seconds"]
    if fast_seconds > 0:
        measurements["fast_speedup_vs_fast_rebuild"] = round(
            measurements["fast_rebuild_seconds"] / fast_seconds, 3
        )
        measurements["fast_speedup_vs_reference_incremental"] = round(
            measurements["reference_incremental_seconds"] / fast_seconds, 3
        )
    return measurements


def measure_rebuild_backends(graph) -> dict:
    """Full offline rebuild on each graph-core backend, equivalence-checked.

    The rebuild path is where the damage-threshold fallback lands, so a
    faster backend directly shrinks the worst case of ``apply_updates``.
    """
    from repro.index.precompute import precompute

    try:  # pytest imports benches as a package; standalone runs do not.
        from benchmarks.bench_index_build import assert_precomputed_equal
    except ImportError:  # pragma: no cover - standalone `python benchmarks/...`
        from bench_index_build import assert_precomputed_equal

    measurements = {}
    records = {}
    for backend in ("reference", "fast"):
        started = time.perf_counter()
        records[backend] = precompute(
            graph,
            max_radius=_DYNAMIC_CONFIG.max_radius,
            thresholds=_DYNAMIC_CONFIG.thresholds,
            num_bits=_DYNAMIC_CONFIG.num_bits,
            backend=backend,
        )
        measurements[backend + "_rebuild_seconds"] = round(
            time.perf_counter() - started, 4
        )
    assert_precomputed_equal(records["fast"], records["reference"])
    reference_seconds = measurements["reference_rebuild_seconds"]
    fast_seconds = measurements["fast_rebuild_seconds"]
    if fast_seconds > 0:
        measurements["speedup"] = round(reference_seconds / fast_seconds, 3)
    return measurements


def test_rebuild_backends_equivalent(dynamic_fixture):
    """Fast-backend rebuilds must be bit-identical to reference rebuilds."""
    graph, _ = dynamic_fixture
    measurements = measure_rebuild_backends(graph)
    assert "reference_rebuild_seconds" in measurements
    assert "fast_rebuild_seconds" in measurements


def test_update_backends_equivalent():
    """Fast-incremental ≡ reference-incremental ≡ fast-rebuild, bit for bit.

    The exact-equivalence gate inside :func:`measure_update_backends` is the
    assertion; this runs it at smoke scale on CI.
    """
    scale = min(NUM_COMMUNITIES, 6)
    measurements = measure_update_backends(num_communities=scale)
    assert measurements["fast_applied_mode"] in ("patch", "compact")
    assert "fast_incremental_seconds" in measurements


def test_fast_incremental_beats_fast_rebuild_at_scale():
    """The acceptance criterion: patching the overlay in place must beat
    re-running the fast offline phase, asserted at full benchmark scale
    (constant costs dominate at smoke scale, as with the reference ratio)."""
    if NUM_COMMUNITIES < 20:
        pytest.skip(
            "speedup is only meaningful at full scale "
            f"(REPRO_BENCH_DYNAMIC_COMMUNITIES={NUM_COMMUNITIES} < 20)"
        )
    measurements = measure_update_backends()
    assert measurements["fast_speedup_vs_fast_rebuild"] > 1.0, measurements


# --------------------------------------------------------------------------- #
# standalone baseline recorder
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--communities", type=int, default=NUM_COMMUNITIES)
    parser.add_argument("--community-size", type=int, default=COMMUNITY_SIZE)
    parser.add_argument("--out", default=None, help="write the JSON baseline here")
    args = parser.parse_args(argv)

    graph, engine = build_dynamic_fixture(args.communities, args.community_size)
    edits = max(int(graph.num_edges() * EDIT_FRACTION), 8)
    print(
        f"graph: |V| = {graph.num_vertices()}, |E| = {graph.num_edges()}, "
        f"edit batch = {edits} ({EDIT_FRACTION:.0%})"
    )

    measurements: dict = {}

    localized = _measure_incremental_vs_rebuild(graph, engine, localized_batch(graph, edits))
    rebuilt = localized.pop("rebuilt_engine")
    measurements["localized"] = localized
    print(
        f"localized batch: mode={localized['report']['mode']}, "
        f"affected {localized['report']['affected_vertices']}/{localized['report']['total_vertices']}, "
        f"incremental {localized['incremental_seconds']}s vs rebuild "
        f"{localized['rebuild_seconds']}s -> {localized['speedup']}x"
    )

    # Correctness spot-check behind the headline number.
    workload = QueryWorkload(graph, rng=97)
    for query in workload.topl_batch(4, num_keywords=4, k=4, top_l=5):
        assert _fingerprint(engine.topl(query)) == _fingerprint(rebuilt.topl(query))
    print("correctness gate: patched answers == rebuilt answers")

    scattered = engine.apply_updates(
        scattered_batch(graph, edits), damage_threshold=None
    )
    measurements["scattered"] = {"report": scattered.as_dict()}
    print(
        f"scattered batch: mode={scattered.mode} "
        f"(damage {scattered.damage_ratio:.2f} vs threshold {scattered.damage_threshold})"
    )

    backends = measure_rebuild_backends(graph)
    measurements["rebuild_backends"] = backends
    print(
        "rebuild backends (bit-identical records): reference "
        f"{backends['reference_rebuild_seconds']}s vs fast "
        f"{backends['fast_rebuild_seconds']}s -> {backends.get('speedup', '?')}x"
    )

    modes = measure_update_backends(args.communities, args.community_size)
    measurements["update_backends"] = modes
    print(
        "update backends (bit-identical records): "
        f"reference-incremental {modes['reference_incremental_seconds']}s vs "
        f"fast-incremental {modes['fast_incremental_seconds']}s "
        f"({modes['fast_applied_mode']}, dirt {modes['fast_overlay_dirt_ratio']}) vs "
        f"fast-rebuild {modes['fast_rebuild_seconds']}s -> "
        f"{modes.get('fast_speedup_vs_fast_rebuild', '?')}x over fast rebuild"
    )

    report = {
        # equivalence=True: the correctness gate above compared patched vs
        # rebuilt answers, and the backend measurements assert bit-identical
        # records between reference and fast.
        **bench_envelope(
            "dynamic_updates",
            seed=GRAPH_SEED,
            speedup_factor=modes.get("fast_speedup_vs_fast_rebuild", 0.0),
            equivalence=True,
        ),
        "dataset": graph.name,
        "num_vertices": graph.num_vertices(),
        "num_edges": graph.num_edges(),
        "edit_batch_size": edits,
        "edit_fraction": EDIT_FRACTION,
        "measurements": measurements,
    }

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
