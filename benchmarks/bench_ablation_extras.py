"""Extra ablations beyond the paper's figures (design choices listed in DESIGN.md).

* **Index traversal vs flat scan** — how much of the speed-up comes from the
  tree index itself (aggregate pruning + best-first termination) versus the
  community-level rules alone.  The flat scan is the brute-force enumeration
  over all centres.
* **Number of pre-selected thresholds m** — more thresholds mean tighter
  score bounds (better pruning) at the cost of a larger index; the bench
  measures query time for m = 1 and m = 3.
* **MIA score vs Monte-Carlo IC spread** — the deterministic MIA-based
  influential score is the paper's ranking signal; the bench checks how it
  correlates with a sampled independent-cascade spread for the top community
  and times both.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.influence.cascade import estimate_spread
from repro.query.baselines.bruteforce import bruteforce_topl

from benchmarks.conftest import BENCH_ROUNDS, default_topl_query


# --------------------------------------------------------------------------- #
# index traversal vs flat scan
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dataset", ("uni", "dblp"))
def test_ablation_index_traversal(benchmark, bench_engines, bench_workloads, dataset):
    engine = bench_engines[dataset]
    query = default_topl_query(bench_workloads[dataset])
    result = benchmark.pedantic(engine.topl, args=(query,), rounds=BENCH_ROUNDS, iterations=1)
    benchmark.extra_info.update({"dataset": dataset, "method": "index", "found": len(result)})


@pytest.mark.parametrize("dataset", ("uni", "dblp"))
def test_ablation_flat_scan(benchmark, bench_graphs, bench_workloads, dataset):
    graph = bench_graphs[dataset]
    query = default_topl_query(bench_workloads[dataset])
    result = benchmark.pedantic(
        bruteforce_topl, args=(graph, query), rounds=BENCH_ROUNDS, iterations=1
    )
    benchmark.extra_info.update(
        {"dataset": dataset, "method": "flat-scan", "found": len(result)}
    )


# --------------------------------------------------------------------------- #
# number of pre-selected thresholds m
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def threshold_count_engines(bench_graphs):
    graph = bench_graphs["uni"]
    return {
        1: InfluentialCommunityEngine.build(
            graph, config=EngineConfig(max_radius=2, thresholds=(0.1,)), validate=False
        ),
        3: InfluentialCommunityEngine.build(
            graph, config=EngineConfig(max_radius=2, thresholds=(0.1, 0.2, 0.3)), validate=False
        ),
    }


@pytest.mark.parametrize("num_thresholds", (1, 3))
def test_ablation_threshold_count(
    benchmark, threshold_count_engines, bench_workloads, num_thresholds
):
    engine = threshold_count_engines[num_thresholds]
    query = default_topl_query(bench_workloads["uni"], theta=0.2)
    result = benchmark.pedantic(engine.topl, args=(query,), rounds=BENCH_ROUNDS, iterations=1)
    benchmark.extra_info.update(
        {
            "m": num_thresholds,
            "scored": result.statistics.communities_scored,
            "pruned": result.statistics.total_pruned,
        }
    )


def test_ablation_more_thresholds_never_weaker(benchmark, threshold_count_engines, bench_workloads):
    """With theta = 0.2, m = 3 has an exact bound while m = 1 falls back to the 0.1 bound."""

    def check():
        query = default_topl_query(bench_workloads["uni"], theta=0.2)
        loose = threshold_count_engines[1].topl(query)
        tight = threshold_count_engines[3].topl(query)
        assert list(tight.scores) == pytest.approx(list(loose.scores))
        assert tight.statistics.communities_scored <= loose.statistics.communities_scored

    benchmark.pedantic(check, rounds=1, iterations=1)


# --------------------------------------------------------------------------- #
# MIA influential score vs Monte-Carlo IC spread
# --------------------------------------------------------------------------- #
def test_ablation_mia_score(benchmark, bench_engines, bench_workloads):
    engine = bench_engines["uni"]
    query = default_topl_query(bench_workloads["uni"], top_l=1, k=3)
    result = benchmark.pedantic(engine.topl, args=(query,), rounds=BENCH_ROUNDS, iterations=1)
    if result.best is not None:
        benchmark.extra_info["mia_score"] = round(result.best.score, 3)


def test_ablation_ic_spread(benchmark, bench_graphs, bench_engines, bench_workloads):
    graph = bench_graphs["uni"]
    engine = bench_engines["uni"]
    query = default_topl_query(bench_workloads["uni"], top_l=1, k=3)
    best = engine.topl(query).best
    if best is None:
        pytest.skip("no community found at the default parameters")
    cascade = benchmark.pedantic(
        estimate_spread,
        args=(graph, best.vertices),
        kwargs={"num_simulations": 30, "rng": 5},
        rounds=BENCH_ROUNDS,
        iterations=1,
    )
    benchmark.extra_info["ic_mean_spread"] = round(cascade.mean_spread, 3)
    benchmark.extra_info["mia_score"] = round(best.score, 3)
    # Both signals agree that the community reaches beyond itself.
    assert cascade.mean_spread >= len(best.vertices)
