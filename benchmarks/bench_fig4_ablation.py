"""Figure 4 — ablation of the pruning strategies.

Panel (a) counts pruned candidate communities and panel (b) measures the wall
clock for three cumulative pruning configurations: keyword only, keyword +
support, and keyword + support + score.  Paper shape: every added rule prunes
roughly an order of magnitude more candidates and lowers the time, with the
influential-score rule contributing the largest share.
"""

import pytest

from repro.graph.datasets import dataset_names
from repro.pruning.stats import ABLATION_CONFIGS
from repro.query.topl import TopLProcessor
from repro.workloads.reporting import format_table

from benchmarks.conftest import BENCH_ROUNDS, default_topl_query

_CONFIG_LABELS = {config.label(): config for config in ABLATION_CONFIGS}
_PRUNED: dict[tuple, dict] = {}


@pytest.mark.parametrize("dataset", dataset_names())
@pytest.mark.parametrize("label", list(_CONFIG_LABELS))
def test_fig4_pruning_ablation(benchmark, bench_graphs, bench_engines, bench_workloads, dataset, label):
    config = _CONFIG_LABELS[label]
    graph = bench_graphs[dataset]
    engine = bench_engines[dataset]
    processor = TopLProcessor(graph, index=engine.index, pruning=config)
    query = default_topl_query(bench_workloads[dataset])

    result = benchmark.pedantic(processor.query, args=(query,), rounds=BENCH_ROUNDS, iterations=1)
    statistics = result.statistics
    _PRUNED[(dataset, label)] = {
        "pruned": statistics.total_pruned,
        "scored": statistics.communities_scored,
        "seconds": benchmark.stats.stats.mean,
    }
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "pruning": label,
            "pruned_candidates": statistics.total_pruned,
            "communities_scored": statistics.communities_scored,
        }
    )


def test_fig4_report(benchmark, capsys):
    """Print the Figure 4 analogue: pruned candidates and time per configuration."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for (dataset, label), metrics in sorted(_PRUNED.items()):
        rows.append(
            {
                "dataset": dataset,
                "pruning": label,
                "pruned": metrics["pruned"],
                "scored": metrics["scored"],
                "time (s)": round(metrics["seconds"], 4),
            }
        )
    with capsys.disabled():
        print()
        print(format_table(rows, title="Figure 4: pruning ablation (#pruned / time)"))
        print(
            "paper shape: each added rule prunes more candidates; "
            "keyword+support+score is fastest"
        )
    assert rows


def test_fig4_more_pruning_scores_fewer_candidates(
    benchmark, bench_graphs, bench_engines, bench_workloads
):
    """Sanity assertion of the paper's headline across all datasets."""

    def check():
        for dataset in dataset_names():
            query = default_topl_query(bench_workloads[dataset])
            scored = []
            for config in ABLATION_CONFIGS:
                processor = TopLProcessor(
                    bench_graphs[dataset], index=bench_engines[dataset].index, pruning=config
                )
                scored.append(processor.query(query).statistics.communities_scored)
            assert scored[0] >= scored[-1]

    benchmark.pedantic(check, rounds=1, iterations=1)
