"""Scenario screening: the declarative catalog run end-to-end on both backends.

Every catalog scenario (``repro.scenarios.catalog``) crosses a graph recipe
with a probability model and a traffic shape, replays the synthesized trace
through :class:`~repro.service.facade.CommunityService` on the reference and
fast backends, and gates on bit-identical wire responses.  This module is
the benchmarks-layer entry point for that screening:

* **pytest** — each *smoke* scenario is a PR-gate test (gates enforced);
  the nightly-only catalog entries carry the ``slow`` marker so
  ``-m 'not slow'`` keeps the PR wall clock down.
* **standalone recorder** — writes ``BENCH_scenarios.json`` (one section per
  scenario, wrapped in the uniform envelope) and prints the ASCII summary::

      python benchmarks/bench_scenarios.py --out BENCH_scenarios.json

The JSON document validates against the checked-in schema
(``repro/scenarios/bench_record.schema.json``); CI's ``bench-schema`` step
re-validates it alongside every other ``BENCH_*.json``.
"""

from __future__ import annotations

import argparse
import sys

import pytest

from repro.scenarios.catalog import catalog, get_scenario, scenario_names
from repro.scenarios.pipeline import run_scenario
from repro.scenarios.report import (
    format_scenario_table,
    scenarios_document,
    write_scenarios_document,
)

_SMOKE = frozenset(scenario_names(smoke_only=True))


def _params():
    """One pytest param per catalog scenario; nightly entries marked slow."""
    for spec in catalog():
        marks = () if spec.smoke else (pytest.mark.slow,)
        yield pytest.param(spec.name, marks=marks, id=spec.name)


@pytest.mark.parametrize("name", _params())
def test_scenario_gates(name):
    """Per-scenario gate: both backends agree bit-for-bit and results land."""
    report = run_scenario(get_scenario(name), enforce_gates=True)
    assert report.passed, report.gates
    assert report.equivalence, report.first_mismatch
    assert report.spec["scenario"]["name"] == name


def test_catalog_document_round_trips():
    """The emitted document validates against the schema and round-trips."""
    from repro.scenarios.bench_schema import validate_bench_document
    from repro.scenarios.report import load_scenarios_document
    import json
    import tempfile

    reports = [run_scenario(get_scenario(name)) for name in sorted(_SMOKE)[:1]]
    document = scenarios_document(reports)
    assert validate_bench_document(document) == []
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as handle:
        json.dump(document, handle)
        path = handle.name
    restored = load_scenarios_document(path)
    assert [r.to_json() for r in restored] == [r.to_json() for r in reports]


# --------------------------------------------------------------------------- #
# standalone baseline recorder
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        help="catalog scenarios to run (default: the full catalog)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="run only the PR-gate smoke subset"
    )
    parser.add_argument("--out", default=None, help="write the JSON baseline here")
    args = parser.parse_args(argv)

    if args.names:
        names = args.names
    else:
        names = list(scenario_names(smoke_only=args.smoke))

    reports = []
    for name in names:
        report = run_scenario(get_scenario(name), enforce_gates=False)
        reports.append(report)
        backends = report.backends
        print(
            f"{name}: reference {backends['reference']['total_seconds']:.2f}s, "
            f"fast {backends['fast']['total_seconds']:.2f}s -> {report.speedup}x, "
            f"equivalence={'ok' if report.equivalence else 'FAIL'}, "
            f"gates={'pass' if report.passed else 'FAIL'}"
        )

    print()
    print(format_scenario_table(reports))

    if args.out:
        write_scenarios_document(reports, args.out)
        print(f"baseline written to {args.out}")

    return 0 if all(report.passed for report in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
