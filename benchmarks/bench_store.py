"""Cold start: mmap store attach vs JSON load + offline rebuild.

A serving process that restarts today pays the full cold-start bill: parse
the graph JSON, re-intern every vertex, and re-run the offline phase
(Algorithm 2 pre-computation + tree construction).  ``repro.store`` packs
the frozen offline phase into a checksummed binary container whose numeric
buffers reconstruct as zero-copy views over one ``mmap`` — opening it skips
all of that.  This bench measures both cold-start paths on the repo's
5k-edge bench network (shared with ``bench_index_build``) and records the
speedup in ``BENCH_store.json``; the committed target is **>= 10x**.

Correctness is part of the bench: a store-backed session must be
indistinguishable from one built in-process.  Both TopL-ICDE and
DTopL-ICDE answers are compared on the wire (the complete
``result_to_wire`` form, timings stripped) between the store-backed and the
built engine, on **both** backends — bit-identical or the bench fails.

Run as a pytest module (``pytest benchmarks/bench_store.py``) or standalone
to record the JSON baseline::

    python benchmarks/bench_store.py --out BENCH_store.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import pytest

from benchmarks.bench_index_build import GRAPH_SEED, build_bench_network
from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.graph.io import load_graph_json, save_graph_json
from repro.service.schema import result_to_wire
from repro.store import pack_store
from repro.workloads.queries import QueryWorkload
from repro.workloads.reporting import bench_envelope

#: Communities in the bench network (scaled down under
#: REPRO_BENCH_STORE_COMMUNITIES for the CI smoke).
NUM_COMMUNITIES = int(os.environ.get("REPRO_BENCH_STORE_COMMUNITIES", "14"))
#: Vertices per community.
COMMUNITY_SIZE = int(os.environ.get("REPRO_BENCH_STORE_COMMUNITY_SIZE", "50"))
#: Query-shape seed for the equivalence probes.
QUERY_SEED = 41
#: Equivalence probes per backend (each runs as TopL *and* DTopL).
NUM_PROBES = 4

_CONFIG = EngineConfig(max_radius=2, thresholds=(0.1, 0.2, 0.3))
_BACKENDS = ("reference", "fast")


def _build_config(backend: str) -> EngineConfig:
    import dataclasses

    return dataclasses.replace(_CONFIG, backend=backend)


def measure_cold_starts(graph_json: str, store_path: str, backend: str) -> dict:
    """Time both cold-start paths to a ready engine on one backend.

    ``baseline``: parse the graph JSON and run the offline phase — what a
    restarted process pays today.  ``store``: open the packed store (mmap
    attach, no offline phase).  Returns the timings plus both engines so the
    caller can run the answer-equivalence gate on them.
    """
    started = time.perf_counter()
    graph = load_graph_json(graph_json)
    built = InfluentialCommunityEngine.build(
        graph, config=_build_config(backend), validate=False
    )
    baseline_seconds = time.perf_counter() - started

    started = time.perf_counter()
    attached = InfluentialCommunityEngine.from_store(
        store_path, config_overrides={"backend": backend}
    )
    store_seconds = time.perf_counter() - started
    return {
        "backend": backend,
        "baseline_seconds": round(baseline_seconds, 4),
        "store_seconds": round(store_seconds, 4),
        "speedup": round(baseline_seconds / max(store_seconds, 1e-9), 3),
        "_built": built,
        "_attached": attached,
    }


def _strip_timings(node) -> None:
    if isinstance(node, dict):
        node.pop("elapsed_seconds", None)
        for value in node.values():
            _strip_timings(value)
    elif isinstance(node, list):
        for value in node:
            _strip_timings(value)


def _wire(result) -> dict:
    """Timing-free canonical wire form, through real JSON text."""
    document = json.loads(json.dumps(result_to_wire(result), default=str))
    _strip_timings(document)
    return document


def assert_answers_identical(built, attached) -> None:
    """The equivalence gate: store-backed answers == built-in-process answers.

    Samples mixed query shapes from the bench network's keyword domain and
    compares the complete wire form of every TopL and DTopL answer.
    """
    workload = QueryWorkload(built.graph, rng=QUERY_SEED)
    for _ in range(NUM_PROBES):
        topl = workload.topl_query(num_keywords=3, k=3, radius=2, theta=0.1, top_l=4)
        assert _wire(built.topl(topl)) == _wire(attached.topl(topl)), topl
        dtopl = workload.dtopl_query(
            num_keywords=3, k=3, radius=2, theta=0.1, top_l=3, candidate_factor=3
        )
        assert _wire(built.dtopl(dtopl)) == _wire(attached.dtopl(dtopl)), dtopl


def prepare_artifacts(graph, directory: str) -> tuple[str, str]:
    """Write the bench network's graph JSON and packed store (both untimed)."""
    graph_json = str(Path(directory) / "bench.json")
    store_path = str(Path(directory) / "bench.repro-store")
    save_graph_json(graph, graph_json)
    packer = InfluentialCommunityEngine.build(graph, config=_CONFIG, validate=False)
    pack_store(packer, store_path)
    return graph_json, store_path


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def bench_artifacts(tmp_path_factory):
    graph = build_bench_network(NUM_COMMUNITIES, COMMUNITY_SIZE)
    directory = tmp_path_factory.mktemp("store-bench")
    graph_json, store_path = prepare_artifacts(graph, str(directory))
    return graph_json, store_path


@pytest.fixture(scope="module", params=_BACKENDS)
def cold_starts(request, bench_artifacts):
    graph_json, store_path = bench_artifacts
    return measure_cold_starts(graph_json, store_path, request.param)


def test_store_answers_identical(cold_starts):
    """Correctness gate: bit-identical answers, whatever the timings say."""
    assert_answers_identical(cold_starts["_built"], cold_starts["_attached"])


def test_store_cold_start_is_faster(cold_starts):
    """Speedup floor, asserted only at full benchmark scale.

    A single timing pair on a shrunken smoke network is noise on shared CI
    runners, so below full scale this skips — the equivalence gate above is
    the CI assertion, and the committed >= 10x number lives in
    ``BENCH_store.json`` via the best-of-N standalone recorder.
    """
    if NUM_COMMUNITIES < 14:
        pytest.skip(
            "cold-start speedup is only meaningful at full scale "
            f"(REPRO_BENCH_STORE_COMMUNITIES={NUM_COMMUNITIES} < 14)"
        )
    speedup = cold_starts["speedup"]
    assert speedup >= 10.0, (
        f"store attach only {speedup:.2f}x over JSON load + rebuild "
        f"on the {cold_starts['backend']} backend"
    )


# --------------------------------------------------------------------------- #
# standalone baseline recorder
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--communities", type=int, default=NUM_COMMUNITIES)
    parser.add_argument("--community-size", type=int, default=COMMUNITY_SIZE)
    parser.add_argument("--repeats", type=int, default=3, help="keep the best of N runs")
    parser.add_argument("--out", default=None, help="write the JSON baseline here")
    args = parser.parse_args(argv)

    graph = build_bench_network(args.communities, args.community_size)
    print(f"bench network: |V| = {graph.num_vertices()}, |E| = {graph.num_edges()}")

    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as directory:
        graph_json, store_path = prepare_artifacts(graph, directory)
        store_bytes = os.path.getsize(store_path)
        json_bytes = os.path.getsize(graph_json)
        print(f"artifacts: graph JSON {json_bytes} bytes, store {store_bytes} bytes")

        best: dict[str, dict] = {}
        for attempt in range(args.repeats):
            for backend in _BACKENDS:
                measurement = measure_cold_starts(graph_json, store_path, backend)
                if backend not in best or measurement["speedup"] > best[backend]["speedup"]:
                    best[backend] = measurement
                print(
                    f"run {attempt + 1} {backend:9s}: baseline "
                    f"{measurement['baseline_seconds']:.3f}s vs store attach "
                    f"{measurement['store_seconds']:.4f}s "
                    f"({measurement['speedup']:.1f}x)"
                )

        for backend in _BACKENDS:
            assert_answers_identical(best[backend]["_built"], best[backend]["_attached"])
        print("equivalence gate: store-backed answers bit-identical on both backends")

    speedup = min(best[backend]["speedup"] for backend in _BACKENDS)
    print(f"cold-start speedup (store attach vs JSON + rebuild, min over backends): {speedup:.1f}x")
    if speedup < 10.0:
        print("WARNING: below the committed 10x target", file=sys.stderr)

    report = {
        # equivalence=True: bit-identical wire answers were asserted above.
        **bench_envelope(
            "store_cold_start",
            seed=GRAPH_SEED,
            speedup_factor=speedup,
            equivalence=True,
        ),
        "network": {
            "name": graph.name,
            "num_vertices": graph.num_vertices(),
            "num_edges": graph.num_edges(),
            "communities": args.communities,
            "community_size": args.community_size,
        },
        "config": _CONFIG.describe(),
        "artifacts": {"graph_json_bytes": json_bytes, "store_bytes": store_bytes},
        "repeats": args.repeats,
        "measurements": {
            backend: {
                key: value
                for key, value in best[backend].items()
                if not key.startswith("_")
            }
            for backend in _BACKENDS
        },
        "speedup_store_vs_rebuild": round(speedup, 3),
        "equivalence_gate": (
            "TopL and DTopL wire answers bit-identical, store-backed vs "
            "built in-process, both backends"
        ),
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
