"""Figure 3(a)–(g) — TopL-ICDE robustness to the Table III parameters.

One bench per panel; each varies a single parameter over the paper's value
set on the three synthetic datasets (Uni / Gau / Zipf) while the others stay
at their defaults.  The paper's headline is that the wall-clock time stays low
and varies smoothly; the per-panel trend notes below each test record the
expected shape.

Panel (h), the |V(G)| scalability sweep, regenerates graphs of different sizes
and therefore lives in its own module (``bench_fig3h_scalability.py``).
Panels (f) |v.W| and (g) |Sigma| also regenerate graphs (the parameter is a
property of the dataset, not of the query) and are included here with their
own smaller graph builds.
"""

import pytest

from repro.core.engine import InfluentialCommunityEngine
from repro.graph.datasets import synthetic_small_world
from repro.workloads.queries import QueryWorkload
from repro.workloads.sweeps import PAPER_PARAMETER_GRID

from benchmarks.conftest import BENCH_CONFIG, BENCH_ROUNDS, BENCH_VERTICES, default_topl_query

GRID = PAPER_PARAMETER_GRID
SYNTHETIC = ("uni", "gau", "zipf")


def _run(benchmark, engine, query, extra: dict):
    result = benchmark.pedantic(engine.topl, args=(query,), rounds=BENCH_ROUNDS, iterations=1)
    benchmark.extra_info.update(extra)
    benchmark.extra_info["communities"] = len(result)
    benchmark.extra_info["pruned"] = result.statistics.total_pruned
    return result


# --------------------------------------------------------------------------- #
# (a) influence threshold theta
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dataset", SYNTHETIC)
@pytest.mark.parametrize("theta", GRID.theta_values)
def test_fig3a_effect_of_theta(benchmark, bench_engines, bench_workloads, dataset, theta):
    """Paper trend: time first rises then falls with theta; stays low throughout."""
    query = default_topl_query(bench_workloads[dataset], theta=theta)
    _run(benchmark, bench_engines[dataset], query, {"dataset": dataset, "theta": theta})


# --------------------------------------------------------------------------- #
# (b) query keyword set size |Q|
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dataset", SYNTHETIC)
@pytest.mark.parametrize("num_keywords", GRID.query_keyword_sizes)
def test_fig3b_effect_of_query_keywords(
    benchmark, bench_engines, bench_workloads, dataset, num_keywords
):
    """Paper trend: larger |Q| raises pruning power; time decreases for |Q| >= 5."""
    query = default_topl_query(bench_workloads[dataset], num_keywords=num_keywords)
    _run(
        benchmark,
        bench_engines[dataset],
        query,
        {"dataset": dataset, "|Q|": num_keywords},
    )


# --------------------------------------------------------------------------- #
# (c) truss support parameter k
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dataset", SYNTHETIC)
@pytest.mark.parametrize("k", GRID.truss_k_values)
def test_fig3c_effect_of_truss_k(benchmark, bench_engines, bench_workloads, dataset, k):
    """Paper trend: time largely insensitive to k (k = 5 finds no communities)."""
    query = default_topl_query(bench_workloads[dataset], k=k)
    _run(benchmark, bench_engines[dataset], query, {"dataset": dataset, "k": k})


# --------------------------------------------------------------------------- #
# (d) radius r
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dataset", SYNTHETIC)
@pytest.mark.parametrize("radius", (1, 2))
def test_fig3d_effect_of_radius(benchmark, bench_engines, bench_workloads, dataset, radius):
    """Paper trend: larger r means larger candidates and higher time.

    The paper sweeps r in {1, 2, 3}; the bench engines pre-compute r_max = 2
    to keep the offline phase affordable, so the sweep covers {1, 2} here
    (r = 3 follows the same trend and is exercised in the unit tests).
    """
    query = default_topl_query(bench_workloads[dataset], radius=radius)
    _run(benchmark, bench_engines[dataset], query, {"dataset": dataset, "r": radius})


# --------------------------------------------------------------------------- #
# (e) result size L
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dataset", SYNTHETIC)
@pytest.mark.parametrize("top_l", GRID.result_sizes)
def test_fig3e_effect_of_result_size(benchmark, bench_engines, bench_workloads, dataset, top_l):
    """Paper trend: more communities to confirm -> mildly increasing time."""
    query = default_topl_query(bench_workloads[dataset], top_l=top_l)
    _run(benchmark, bench_engines[dataset], query, {"dataset": dataset, "L": top_l})


# --------------------------------------------------------------------------- #
# (f) keywords per vertex |v.W| — regenerates the graphs
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def keyword_density_engines():
    """Engines over smaller Uni graphs with varying |v.W| (graph property sweep)."""
    engines = {}
    size = max(150, BENCH_VERTICES // 2)
    for keywords_per_vertex in GRID.keywords_per_vertex_values:
        graph = synthetic_small_world(
            "uniform",
            num_vertices=size,
            keywords_per_vertex=keywords_per_vertex,
            rng=31,
        )
        engines[keywords_per_vertex] = (
            graph,
            InfluentialCommunityEngine.build(graph, config=BENCH_CONFIG, validate=False),
        )
    return engines


@pytest.mark.parametrize("keywords_per_vertex", GRID.keywords_per_vertex_values)
def test_fig3f_effect_of_keywords_per_vertex(
    benchmark, keyword_density_engines, keywords_per_vertex
):
    """Paper trend: time first rises (more candidates) then falls (higher score bounds)."""
    graph, engine = keyword_density_engines[keywords_per_vertex]
    workload = QueryWorkload(graph, rng=97)
    query = default_topl_query(workload)
    _run(benchmark, engine, query, {"dataset": "uni", "|v.W|": keywords_per_vertex})


# --------------------------------------------------------------------------- #
# (g) keyword domain size |Sigma| — regenerates the graphs
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def keyword_domain_engines():
    """Engines over smaller Uni graphs with varying |Sigma| (graph property sweep)."""
    engines = {}
    size = max(150, BENCH_VERTICES // 2)
    for domain_size in GRID.keyword_domain_sizes:
        graph = synthetic_small_world(
            "uniform", num_vertices=size, domain_size=domain_size, rng=37
        )
        engines[domain_size] = (
            graph,
            InfluentialCommunityEngine.build(graph, config=BENCH_CONFIG, validate=False),
        )
    return engines


@pytest.mark.parametrize("domain_size", GRID.keyword_domain_sizes)
def test_fig3g_effect_of_keyword_domain(benchmark, keyword_domain_engines, domain_size):
    """Paper trend: time first rises then falls as |Sigma| grows; remains low."""
    graph, engine = keyword_domain_engines[domain_size]
    workload = QueryWorkload(graph, rng=97)
    query = default_topl_query(workload)
    _run(benchmark, engine, query, {"dataset": "uni", "|Sigma|": domain_size})
