"""Figure 2 — TopL-ICDE (ours) vs the ATindex baseline on all five datasets.

Paper shape: the index-based TopL-ICDE algorithm beats ATindex by more than an
order of magnitude on every dataset (ATindex is so slow on DBLP that the paper
samples 0.5% of its centres).  The bench times both methods with default
parameters and reports the per-dataset speed-up.
"""

import pytest

from repro.graph.datasets import dataset_names
from repro.query.baselines.atindex import ATIndex, atindex_topl
from repro.workloads.reporting import format_table, speedup

from benchmarks.conftest import BENCH_ROUNDS, default_topl_query

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def atindex_indexes(bench_graphs):
    """The ATindex offline phase (truss decomposition) per dataset."""
    return {name: ATIndex.build(graph) for name, graph in bench_graphs.items()}


@pytest.mark.parametrize("dataset", dataset_names())
def test_fig2_topl_icde(benchmark, bench_engines, bench_workloads, dataset):
    engine = bench_engines[dataset]
    query = default_topl_query(bench_workloads[dataset])
    result = benchmark.pedantic(
        engine.topl, args=(query,), rounds=BENCH_ROUNDS, iterations=1
    )
    _RESULTS.setdefault(dataset, {})["topl_icde_s"] = benchmark.stats.stats.mean
    _RESULTS[dataset]["communities"] = len(result)
    benchmark.extra_info["communities"] = len(result)
    benchmark.extra_info["pruned"] = result.statistics.total_pruned


@pytest.mark.parametrize("dataset", dataset_names())
def test_fig2_atindex_baseline(
    benchmark, bench_graphs, bench_workloads, atindex_indexes, dataset
):
    graph = bench_graphs[dataset]
    query = default_topl_query(bench_workloads[dataset])
    result = benchmark.pedantic(
        atindex_topl,
        args=(graph, query),
        kwargs={"index": atindex_indexes[dataset]},
        rounds=BENCH_ROUNDS,
        iterations=1,
    )
    _RESULTS.setdefault(dataset, {})["atindex_s"] = benchmark.stats.stats.mean
    benchmark.extra_info["communities"] = len(result)
    benchmark.extra_info["scored"] = result.statistics.communities_scored


def test_fig2_report(benchmark, capsys):
    """Print the Figure 2 analogue: per-dataset wall clock and speed-up."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for dataset, metrics in _RESULTS.items():
        if "topl_icde_s" not in metrics or "atindex_s" not in metrics:
            continue
        rows.append(
            {
                "dataset": dataset,
                "TopL-ICDE (s)": round(metrics["topl_icde_s"], 4),
                "ATindex (s)": round(metrics["atindex_s"], 4),
                "speedup": round(speedup(metrics["atindex_s"], metrics["topl_icde_s"]), 2),
            }
        )
    with capsys.disabled():
        print()
        print(format_table(rows, title="Figure 2: TopL-ICDE vs ATindex wall clock"))
        print("paper shape: TopL-ICDE faster than ATindex by >= 1 order of magnitude")
    assert rows, "timed results missing (run the timing benches first)"
