"""Gateway overhead: HTTP end-to-end vs in-process batch throughput.

The versioned HTTP gateway adds JSON (de)serialisation and a network round
trip on top of the in-process serving path.  This bench quantifies that tax
on a mixed TopL/DTopL batch:

* **in-process sequential** — ``CommunityService.batch`` with caches off;
  the baseline every other number is relative to.
* **in-process parallel** — the same batch at ``workers=4``; doubles as the
  **correctness gate**: its answers must be bit-identical to sequential.
* **HTTP buffered** — ``POST /v1/batch`` against a live gateway on
  localhost, answers parsed back from JSON and asserted bit-identical to
  the in-process results.
* **HTTP streaming** — ``POST /v1/batch?stream=1`` (NDJSON), result lines
  asserted identical to the buffered ones.

Run as pytest (``pytest benchmarks/bench_gateway.py``) or standalone to
record a JSON baseline::

    python benchmarks/bench_gateway.py --out BENCH_gateway.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import urllib.request

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.graph.datasets import synthetic_small_world
from repro.serve.batch import ServingConfig
from repro.service.facade import CommunityService
from repro.service.gateway import ServiceGateway
from repro.service.schema import BatchRequest, result_to_wire
from repro.workloads.queries import QueryWorkload
from repro.workloads.reporting import bench_envelope

#: Batch size of the gateway measurement.
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_GATEWAY_BATCH", "24"))
#: Seed for the bench graph (the query workload is seeded separately, 97).
GRAPH_SEED = 41

_GATEWAY_CONFIG = EngineConfig(max_radius=2, thresholds=(0.1, 0.2, 0.3))
_SESSION = "bench"


def build_gateway_fixture(num_vertices: int, batch_size: int):
    """Service (caches off — every measurement executes) + gateway + batch."""
    graph = synthetic_small_world("uniform", num_vertices=num_vertices, rng=GRAPH_SEED)
    engine = InfluentialCommunityEngine.build(
        graph, config=_GATEWAY_CONFIG, validate=False
    )
    service = CommunityService(
        serving_config=ServingConfig(
            result_cache_capacity=0, propagation_cache_capacity=0
        )
    )
    service.adopt(engine, session=_SESSION)
    workload = QueryWorkload(graph, rng=97)
    num_dtopl = max(batch_size // 4, 1)
    queries = workload.topl_batch(batch_size - num_dtopl, num_keywords=5, k=4, top_l=5)
    queries += workload.dtopl_batch(num_dtopl, num_keywords=5, k=4, top_l=5)
    return graph, service, tuple(queries)


def post_json(url: str, document: dict) -> bytes:
    request = urllib.request.Request(
        url,
        data=json.dumps(document).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        return response.read()


def strip_statistics(result_document: dict) -> dict:
    """Answers must match across paths; execution counters legitimately differ."""
    return {k: v for k, v in result_document.items() if k != "statistics"}


def measure_paths(service: CommunityService, queries, batch_size=None) -> dict:
    """All four paths over the same batch, with cross-path equivalence gates."""
    queries = queries if batch_size is None else queries[:batch_size]
    request = BatchRequest(session=_SESSION, queries=queries)
    measurements: dict = {"batch_size": len(queries), "cpu_count": os.cpu_count()}

    started = time.perf_counter()
    sequential = service.batch(request)
    measurements["in_process_sequential"] = {
        "elapsed_seconds": round(time.perf_counter() - started, 4),
        "queries_per_second": sequential.statistics["queries_per_second"],
    }
    sequential_wire = [strip_statistics(r) for r in sequential.results]

    started = time.perf_counter()
    parallel = service.batch(
        BatchRequest(session=_SESSION, queries=queries, workers=4)
    )
    measurements["in_process_parallel"] = {
        "elapsed_seconds": round(time.perf_counter() - started, 4),
        "queries_per_second": parallel.statistics["queries_per_second"],
        "mode": parallel.statistics["mode"],
    }
    # Correctness gate #1: parallel ≡ sequential, bit for bit.
    assert [strip_statistics(r) for r in parallel.results] == sequential_wire, (
        "parallel in-process answers differ from sequential"
    )

    with ServiceGateway(service, port=0) as gateway:
        url = gateway.url + "/v1/batch"
        started = time.perf_counter()
        buffered = json.loads(post_json(url, request.to_json()))
        elapsed = time.perf_counter() - started
        measurements["http_buffered"] = {
            "elapsed_seconds": round(elapsed, 4),
            "queries_per_second": round(len(queries) / elapsed, 4) if elapsed else 0.0,
        }
        # Correctness gate #2: the HTTP answer is the in-process answer.
        assert [
            strip_statistics(r) for r in buffered["results"]
        ] == json.loads(json.dumps(sequential_wire)), (
            "HTTP buffered answers differ from in-process"
        )

        started = time.perf_counter()
        raw = post_json(url + "?stream=1", request.to_json())
        elapsed = time.perf_counter() - started
        lines = [json.loads(line) for line in raw.splitlines()]
        measurements["http_streaming"] = {
            "elapsed_seconds": round(elapsed, 4),
            "queries_per_second": round(len(queries) / elapsed, 4) if elapsed else 0.0,
        }
        # Correctness gate #3: streamed lines carry the same answers.
        streamed = [
            strip_statistics(line["result"]) for line in lines if line["kind"] == "result"
        ]
        assert streamed == json.loads(json.dumps(sequential_wire)), (
            "NDJSON streamed answers differ from in-process"
        )
        assert lines[-1]["kind"] == "summary"

    http_qps = measurements["http_buffered"]["queries_per_second"]
    seq_qps = measurements["in_process_sequential"]["queries_per_second"]
    if http_qps:
        measurements["http_overhead_factor"] = round(seq_qps / http_qps, 4)
    return measurements


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def gateway_fixture():
    from benchmarks.conftest import BENCH_VERTICES

    return build_gateway_fixture(BENCH_VERTICES, BATCH_SIZE)


def test_http_roundtrip_identical_answers(gateway_fixture):
    """The three correctness gates, at a small batch (CI smoke)."""
    _, service, queries = gateway_fixture
    measurements = measure_paths(service, queries, batch_size=min(len(queries), 8))
    assert set(measurements) >= {
        "in_process_sequential",
        "in_process_parallel",
        "http_buffered",
        "http_streaming",
    }


def test_gateway_throughput(benchmark, gateway_fixture):
    """Queries/sec of the buffered HTTP path (pytest-benchmark measurement)."""
    from benchmarks.conftest import BENCH_ROUNDS

    graph, service, queries = gateway_fixture
    request = BatchRequest(session=_SESSION, queries=queries).to_json()
    with ServiceGateway(service, port=0) as gateway:
        url = gateway.url + "/v1/batch"
        body = benchmark.pedantic(
            post_json, args=(url, request), rounds=BENCH_ROUNDS, iterations=1
        )
    document = json.loads(body)
    benchmark.extra_info.update(
        {
            "|V(G)|": graph.num_vertices(),
            "batch_size": len(queries),
            "executed": document["statistics"]["executed"],
        }
    )
    assert len(document["results"]) == len(queries)


def test_wire_forms_are_json_stable(gateway_fixture):
    """result_to_wire documents survive a JSON text round trip unchanged."""
    _, service, queries = gateway_fixture
    result = service.answer_one(_SESSION, queries[0])
    document = result_to_wire(result)
    assert json.loads(json.dumps(document)) == document


# --------------------------------------------------------------------------- #
# standalone baseline recorder
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=400)
    parser.add_argument("--batch", type=int, default=BATCH_SIZE)
    parser.add_argument("--out", default=None, help="write the JSON baseline here")
    args = parser.parse_args(argv)

    graph, service, queries = build_gateway_fixture(args.vertices, args.batch)
    measurements = measure_paths(service, queries)
    report = {
        # The headline ratio here is the HTTP *overhead* factor (in-process
        # q/s over HTTP q/s); equivalence=True because measure_paths asserts
        # every path returns bit-identical answers.
        **bench_envelope(
            "gateway",
            seed=GRAPH_SEED,
            speedup_factor=measurements.get("http_overhead_factor", 0.0),
            equivalence=True,
        ),
        "dataset": graph.name,
        "num_vertices": graph.num_vertices(),
        "num_edges": graph.num_edges(),
        "measurements": measurements,
    }
    for path in (
        "in_process_sequential",
        "in_process_parallel",
        "http_buffered",
        "http_streaming",
    ):
        print(f"{path}: {measurements[path]['queries_per_second']:.2f} queries/sec")
    if "http_overhead_factor" in measurements:
        print(
            "HTTP overhead vs in-process sequential: "
            f"{measurements['http_overhead_factor']:.2f}x"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
