"""Figure 6 — DTopL-ICDE performance and accuracy.

* (a) wall clock of Greedy_WP (the paper's method) vs Greedy_WoP vs Optimal on
  all five datasets — paper shape: Greedy_WP ≈ Greedy_WoP ≪ Optimal (the
  optimal enumeration is at least three orders of magnitude slower).
* (b) effect of the result size L on the synthetic graphs.
* (c) effect of the candidate factor n.
* (d) scalability with |V(G)| (scaled ladder, as in Figure 3(h)).
* (e) accuracy of Greedy_WP vs Optimal on small graphs — paper shape:
  99.8%–100%.
"""

import os

import pytest

from repro.core.engine import InfluentialCommunityEngine
from repro.graph.datasets import dataset_names, synthetic_small_world
from repro.query.baselines.greedy_wop import greedy_wop_dtopl
from repro.query.baselines.optimal import optimal_dtopl
from repro.workloads.queries import QueryWorkload
from repro.workloads.reporting import format_table
from repro.workloads.sweeps import PAPER_PARAMETER_GRID

from benchmarks.conftest import (
    BENCH_CONFIG,
    BENCH_ROUNDS,
    default_dtopl_query,
)

GRID = PAPER_PARAMETER_GRID
SYNTHETIC = ("uni", "gau", "zipf")
_FIG6A: dict[tuple, float] = {}
_FIG6E: dict[str, float] = {}


# --------------------------------------------------------------------------- #
# (a) method comparison on all datasets
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dataset", dataset_names())
@pytest.mark.parametrize("method", ("greedy_wp", "greedy_wop", "optimal"))
def test_fig6a_dtopl_methods(
    benchmark, bench_graphs, bench_engines, bench_workloads, dataset, method
):
    graph = bench_graphs[dataset]
    engine = bench_engines[dataset]
    # Optimal enumerates C(nL, L) subsets; keep L modest so the bench finishes.
    query = default_dtopl_query(bench_workloads[dataset], top_l=3, candidate_factor=3)

    if method == "greedy_wp":
        runner = lambda: engine.dtopl(query)  # noqa: E731
    elif method == "greedy_wop":
        runner = lambda: greedy_wop_dtopl(graph, query, index=engine.index)  # noqa: E731
    else:
        runner = lambda: optimal_dtopl(graph, query, index=engine.index)  # noqa: E731

    result = benchmark.pedantic(runner, rounds=BENCH_ROUNDS, iterations=1)
    _FIG6A[(dataset, method)] = benchmark.stats.stats.mean
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "method": method,
            "diversity_score": round(result.diversity_score, 3),
            "gain_evaluations": result.increment_evaluations,
        }
    )


def test_fig6a_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for dataset in dataset_names():
        row = {"dataset": dataset}
        for method in ("greedy_wp", "greedy_wop", "optimal"):
            seconds = _FIG6A.get((dataset, method))
            if seconds is not None:
                row[f"{method} (s)"] = round(seconds, 4)
        if len(row) > 1:
            rows.append(row)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Figure 6(a): DTopL-ICDE method comparison"))
        print("paper shape: Greedy_WP fastest; Optimal slower by orders of magnitude")
    assert rows


# --------------------------------------------------------------------------- #
# (b) effect of L
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dataset", SYNTHETIC)
@pytest.mark.parametrize("top_l", GRID.result_sizes)
def test_fig6b_effect_of_result_size(
    benchmark, bench_engines, bench_workloads, dataset, top_l
):
    """Paper trend: larger L -> more candidates (nL) to collect and refine -> higher time."""
    engine = bench_engines[dataset]
    query = default_dtopl_query(bench_workloads[dataset], top_l=top_l)
    result = benchmark.pedantic(engine.dtopl, args=(query,), rounds=BENCH_ROUNDS, iterations=1)
    benchmark.extra_info.update(
        {"dataset": dataset, "L": top_l, "communities": len(result)}
    )


# --------------------------------------------------------------------------- #
# (c) effect of the candidate factor n
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dataset", SYNTHETIC)
@pytest.mark.parametrize("candidate_factor", GRID.candidate_factors)
def test_fig6c_effect_of_candidate_factor(
    benchmark, bench_engines, bench_workloads, dataset, candidate_factor
):
    """Paper trend: larger n -> lower sigma_(nL) bound -> more candidates -> higher time."""
    engine = bench_engines[dataset]
    query = default_dtopl_query(
        bench_workloads[dataset], candidate_factor=candidate_factor
    )
    result = benchmark.pedantic(engine.dtopl, args=(query,), rounds=BENCH_ROUNDS, iterations=1)
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "n": candidate_factor,
            "candidates": result.candidates_considered,
        }
    )


# --------------------------------------------------------------------------- #
# (d) scalability with |V(G)|
# --------------------------------------------------------------------------- #
_DTOPL_SIZES = tuple(
    int(token)
    for token in os.environ.get("REPRO_BENCH_SCALABILITY_SIZES", "100,200,400,800").split(",")
)


@pytest.fixture(scope="module")
def dtopl_scalability_engines():
    engines = {}
    for size in _DTOPL_SIZES:
        graph = synthetic_small_world("uniform", num_vertices=size, rng=53)
        engines[size] = (
            graph,
            InfluentialCommunityEngine.build(graph, config=BENCH_CONFIG, validate=False),
        )
    return engines


@pytest.mark.parametrize("size", _DTOPL_SIZES)
def test_fig6d_scalability(benchmark, dtopl_scalability_engines, size):
    graph, engine = dtopl_scalability_engines[size]
    workload = QueryWorkload(graph, rng=97)
    query = default_dtopl_query(workload, top_l=3, candidate_factor=3)
    result = benchmark.pedantic(engine.dtopl, args=(query,), rounds=BENCH_ROUNDS, iterations=1)
    benchmark.extra_info.update({"|V(G)|": graph.num_vertices(), "communities": len(result)})


# --------------------------------------------------------------------------- #
# (e) accuracy vs Optimal on small graphs
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def accuracy_engines():
    """Small graphs (paper: 1K vertices, |v.W| = 3, |Sigma| = 20) for the accuracy study."""
    engines = {}
    for distribution in ("uniform", "gaussian", "zipf"):
        graph = synthetic_small_world(
            distribution, num_vertices=150, domain_size=20, keywords_per_vertex=3, rng=61
        )
        engines[distribution] = (
            graph,
            InfluentialCommunityEngine.build(graph, config=BENCH_CONFIG, validate=False),
        )
    return engines


@pytest.mark.parametrize("distribution", ("uniform", "gaussian", "zipf"))
def test_fig6e_accuracy(benchmark, accuracy_engines, distribution):
    """Paper shape: greedy diversity score within ~0.14% of the optimum (>= 99.8%)."""
    graph, engine = accuracy_engines[distribution]
    workload = QueryWorkload(graph, rng=97)
    query = default_dtopl_query(workload, top_l=3, candidate_factor=3)

    greedy = benchmark.pedantic(engine.dtopl, args=(query,), rounds=BENCH_ROUNDS, iterations=1)
    optimal = optimal_dtopl(graph, query, index=engine.index)
    if optimal.diversity_score > 0:
        accuracy = greedy.diversity_score / optimal.diversity_score
    else:
        accuracy = 1.0
    _FIG6E[distribution] = accuracy
    benchmark.extra_info.update({"dataset": distribution, "accuracy": round(accuracy, 5)})
    # The (1 - 1/e) guarantee must always hold; the paper observes ~1.0.
    assert accuracy >= 0.63 - 1e-9
    assert accuracy <= 1.0 + 1e-9


def test_fig6e_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        {"dataset": name, "accuracy": round(value, 5)} for name, value in _FIG6E.items()
    ]
    with capsys.disabled():
        print()
        print(format_table(rows, title="Figure 6(e): DTopL-ICDE accuracy vs Optimal"))
        print("paper shape: accuracy between 99.863% and 100%")
    assert rows
