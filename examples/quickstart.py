#!/usr/bin/env python3
"""Quickstart: build an engine over a synthetic social network and query it.

Run with::

    python examples/quickstart.py

The script walks through the library's two-phase workflow:

1. generate one of the paper's synthetic graphs (a Newman–Watts–Strogatz
   small world with keyword sets drawn uniformly from a 50-topic domain);
2. run the offline phase (Algorithm 2 pre-computation + tree index);
3. answer a TopL-ICDE query (Definition 4 / Algorithm 3);
4. answer the diversified DTopL-ICDE variant (Definition 5 / Algorithm 4);
5. print what was found and how much work the pruning rules saved.
"""

from __future__ import annotations

import time

from repro import InfluentialCommunityEngine, make_dtopl_query, make_topl_query
from repro.graph import datasets
from repro.workloads.reporting import format_table


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. a synthetic social network (paper Section VIII-A, "Uni")
    # ------------------------------------------------------------------ #
    graph = datasets.uni(num_vertices=600, rng=42)
    print(f"graph: {graph.name}  |V| = {graph.num_vertices()}  |E| = {graph.num_edges()}")

    # ------------------------------------------------------------------ #
    # 2. offline phase: pre-computation + tree index
    # ------------------------------------------------------------------ #
    started = time.perf_counter()
    engine = InfluentialCommunityEngine.build(graph)
    print(f"offline phase finished in {time.perf_counter() - started:.2f}s")
    print(f"index: {engine.index.describe()}")

    # ------------------------------------------------------------------ #
    # 3. TopL-ICDE: the 3 most influential "movies"/"books" communities
    # ------------------------------------------------------------------ #
    query = make_topl_query(
        {"movies", "books", "music", "travel", "food"},
        k=3,        # every community edge sits in >= 1 triangle
        radius=2,   # members within 2 hops of the community centre
        theta=0.2,  # count users influenced with probability >= 0.2
        top_l=3,
    )
    started = time.perf_counter()
    result = engine.topl(query)
    elapsed = time.perf_counter() - started

    print(f"\nTopL-ICDE answered in {elapsed * 1000:.1f} ms "
          f"({result.statistics.total_pruned} candidates pruned, "
          f"{result.statistics.communities_scored} scored)")
    print(format_table(result.summary_rows(), title="top-L most influential communities"))

    # ------------------------------------------------------------------ #
    # 4. DTopL-ICDE: 3 diversified communities for a joint campaign
    # ------------------------------------------------------------------ #
    diversified_query = make_dtopl_query(
        {"movies", "books", "music", "travel", "food"},
        k=3,
        radius=2,
        theta=0.2,
        top_l=3,
        candidate_factor=3,
    )
    started = time.perf_counter()
    diversified = engine.dtopl(diversified_query)
    elapsed = time.perf_counter() - started

    print(f"\nDTopL-ICDE answered in {elapsed * 1000:.1f} ms "
          f"(diversity score {diversified.diversity_score:.2f}, "
          f"{diversified.increment_evaluations} marginal-gain evaluations)")
    print(format_table(diversified.summary_rows(), title="diversified top-L communities"))

    # ------------------------------------------------------------------ #
    # 5. how much do the two objectives differ?
    # ------------------------------------------------------------------ #
    overlap_note = (
        "TopL-ICDE ranks communities independently (their influenced users may overlap); "
        "DTopL-ICDE picks a set whose *combined* reach is largest."
    )
    print(f"\n{overlap_note}")


if __name__ == "__main__":
    main()
