#!/usr/bin/env python3
"""Parameter study: reproduce the shape of the paper's Figure 3 sweeps in code.

The benchmark suite under ``benchmarks/`` regenerates each figure with
pytest-benchmark; this example shows how to run the same sweeps
programmatically with :class:`repro.workloads.ExperimentRunner`, which is the
more convenient route when you want the raw rows (e.g. to plot them yourself).

Run with::

    python examples/parameter_study.py

The graphs are deliberately small so the script finishes in well under a
minute; increase ``NUM_VERTICES`` for smoother trends.
"""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.workloads.reporting import format_series, format_table
from repro.workloads.runner import ExperimentRunner
from repro.workloads.sweeps import PAPER_PARAMETER_GRID

NUM_VERTICES = 400
DISTRIBUTIONS = ("uniform", "gaussian", "zipf")


def sweep_influence_threshold(runner: ExperimentRunner) -> list[dict]:
    """Figure 3(a): effect of the influence threshold theta."""
    rows = []
    for distribution in DISTRIBUTIONS:
        graph = runner.synthetic_graph(distribution, num_vertices=NUM_VERTICES)
        workload = runner.workload_for(graph)
        series = []
        for setting in runner.grid.sweep("theta"):
            query = workload.topl_query(
                num_keywords=setting["num_query_keywords"],
                k=3,
                radius=setting["radius"],
                theta=setting["theta"],
                top_l=setting["top_l"],
            )
            point = runner.measure_topl(graph, query)
            rows.append(point.row())
            series.append((setting["theta"], round(point.metrics["wall_clock_s"], 4)))
        print(format_series(f"theta sweep [{distribution}]", series))
    return rows


def sweep_result_size(runner: ExperimentRunner) -> list[dict]:
    """Figure 3(e): effect of the result size L."""
    rows = []
    for distribution in DISTRIBUTIONS:
        graph = runner.synthetic_graph(distribution, num_vertices=NUM_VERTICES)
        workload = runner.workload_for(graph)
        series = []
        for setting in runner.grid.sweep("top_l"):
            query = workload.topl_query(
                num_keywords=setting["num_query_keywords"],
                k=3,
                radius=setting["radius"],
                theta=setting["theta"],
                top_l=setting["top_l"],
            )
            point = runner.measure_topl(graph, query)
            rows.append(point.row())
            series.append((setting["top_l"], round(point.metrics["wall_clock_s"], 4)))
        print(format_series(f"L sweep     [{distribution}]", series))
    return rows


def sweep_graph_size(runner: ExperimentRunner) -> list[dict]:
    """Figure 3(h): scalability with |V(G)| (scaled ladder)."""
    rows = []
    series = []
    for size in (100, 200, 400, 800):
        graph = runner.synthetic_graph("uniform", num_vertices=size)
        workload = runner.workload_for(graph)
        query = workload.topl_query(num_keywords=5, k=3, radius=2, theta=0.2, top_l=5)
        point = runner.measure_topl(graph, query)
        rows.append(point.row())
        series.append((size, round(point.metrics["wall_clock_s"], 4)))
    print(format_series("|V| sweep   [uniform]", series))
    return rows


def main() -> None:
    runner = ExperimentRunner(
        grid=PAPER_PARAMETER_GRID,
        config=EngineConfig(max_radius=2, thresholds=(0.1, 0.2, 0.3)),
        rng_seed=2024,
    )

    print("== Figure 3(a): influence threshold theta ==")
    theta_rows = sweep_influence_threshold(runner)

    print("\n== Figure 3(e): result size L ==")
    size_rows = sweep_result_size(runner)

    print("\n== Figure 3(h): graph size |V(G)| ==")
    scalability_rows = sweep_graph_size(runner)

    print("\nraw rows (first few):")
    print(format_table((theta_rows + size_rows + scalability_rows)[:8]))
    print(
        "\nexpected shapes (paper): theta — rise then fall; L — mild increase; "
        "|V| — smooth growth"
    )


if __name__ == "__main__":
    main()
