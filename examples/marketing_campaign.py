#!/usr/bin/env python3
"""Online advertising scenario (the paper's Example 1).

A sales manager wants to promote a new film-related product:

* Find seed communities of users who are interested in movie-related topics,
  are tightly knit (so group-buying discounts spread inside the community),
  and exert the most influence on the rest of the network.
* Then plan a *campaign of several communities* whose combined reach is
  maximised — the DTopL-ICDE variant — so coupons are not wasted on
  communities that influence the same people twice.

Run with::

    python examples/marketing_campaign.py
"""

from __future__ import annotations

from repro import InfluentialCommunityEngine, make_dtopl_query, make_topl_query
from repro.graph import datasets
from repro.influence.cascade import estimate_spread
from repro.workloads.reporting import format_table

#: Product categories the campaign targets (a subset of the keyword domain).
CAMPAIGN_TOPICS = {"movies", "books", "music"}


def plan_individual_campaigns(engine: InfluentialCommunityEngine) -> None:
    """Rank candidate communities independently (TopL-ICDE)."""
    query = make_topl_query(CAMPAIGN_TOPICS, k=3, radius=2, theta=0.2, top_l=5)
    result = engine.topl(query)

    print("=== candidate communities, ranked by influence ===")
    rows = []
    for rank, community in enumerate(result, start=1):
        rows.append(
            {
                "rank": rank,
                "centre user": community.center,
                "community size": len(community),
                "influence score": round(community.score, 2),
                "users reached": community.num_influenced,
                "reached outside": community.num_influenced_outside,
            }
        )
    print(format_table(rows))
    if result.best is not None:
        per_member = result.best.score / len(result.best)
        print(f"best community delivers {per_member:.2f} influence per seeded user\n")


def plan_joint_campaign(engine: InfluentialCommunityEngine) -> None:
    """Pick a set of communities with the largest combined reach (DTopL-ICDE)."""
    query = make_dtopl_query(
        CAMPAIGN_TOPICS, k=3, radius=2, theta=0.2, top_l=3, candidate_factor=3
    )
    result = engine.dtopl(query)

    print("=== diversified campaign (joint reach) ===")
    print(format_table(result.summary_rows()))
    total_individual = sum(community.score for community in result)
    print(
        f"joint diversity score: {result.diversity_score:.2f} "
        f"(sum of individual scores {total_individual:.2f}; the difference is "
        "influence that would have been double-counted)"
    )
    print()


def sanity_check_with_simulation(engine: InfluentialCommunityEngine) -> None:
    """Cross-check the MIA-based ranking with Monte-Carlo cascade simulation."""
    query = make_topl_query(CAMPAIGN_TOPICS, k=3, radius=2, theta=0.2, top_l=2)
    result = engine.topl(query)
    if len(result) < 2:
        print("(not enough communities for the simulation cross-check)")
        return

    print("=== Monte-Carlo cross-check (independent cascade, 200 runs) ===")
    rows = []
    for community in result:
        cascade = estimate_spread(
            engine.graph, community.vertices, num_simulations=200, rng=7
        )
        rows.append(
            {
                "centre user": community.center,
                "MIA influence score": round(community.score, 2),
                "simulated spread": round(cascade.mean_spread, 2),
                "spread std": round(cascade.std_spread, 2),
            }
        )
    print(format_table(rows))
    print("the deterministic MIA score and the simulated spread rank the communities the same way")


def main() -> None:
    graph = datasets.dblp_like(num_vertices=800, rng=3)
    print(
        f"social network: {graph.name}, |V| = {graph.num_vertices()}, "
        f"|E| = {graph.num_edges()}\n"
    )
    engine = InfluentialCommunityEngine.build(graph)

    plan_individual_campaigns(engine)
    plan_joint_campaign(engine)
    sanity_check_with_simulation(engine)


if __name__ == "__main__":
    main()
