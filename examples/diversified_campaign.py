#!/usr/bin/env python3
"""DTopL-ICDE deep dive: why diversified selection beats independent ranking.

The script constructs a network where the three most influential communities
heavily overlap in the users they reach — the situation that motivates
DTopL-ICDE (Definition 5).  It then compares:

* the plain TopL-ICDE ranking (which happily returns the overlapping trio),
* the greedy DTopL-ICDE selection with lazy-evaluation pruning (Greedy_WP),
* the greedy without pruning (Greedy_WoP), and
* the exact optimum (Optimal) — feasible here because the instance is small.

Run with::

    python examples/diversified_campaign.py
"""

from __future__ import annotations

import time

from repro import InfluentialCommunityEngine, make_dtopl_query, make_topl_query
from repro.graph.social_network import SocialNetwork
from repro.pruning.diversity import diversity_score
from repro.query.baselines.greedy_wop import greedy_wop_dtopl
from repro.query.baselines.optimal import optimal_dtopl
from repro.workloads.reporting import format_table


def build_overlapping_network() -> SocialNetwork:
    """Three 'sports' cliques around one shared audience + one independent clique."""
    graph = SocialNetwork(name="overlapping-communities")
    cliques = {
        "A": [1, 2, 3, 4],
        "B": [5, 6, 7, 8],
        "C": [9, 10, 11, 12],
        "D": [13, 14, 15, 16],   # reaches a different audience
    }
    for name, members in cliques.items():
        for vertex in members:
            graph.add_vertex(vertex, {"sports"})
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                graph.add_edge(u, v, 0.8)

    shared_audience = list(range(20, 35))
    separate_audience = list(range(40, 50))
    for vertex in shared_audience + separate_audience:
        graph.add_vertex(vertex, {"cosmetics"})

    # Cliques A, B, C all reach the same shared audience.
    for clique_name in ("A", "B", "C"):
        anchor = cliques[clique_name][0]
        for vertex in shared_audience:
            graph.add_edge(anchor, vertex, 0.7)
    # Clique D reaches its own audience.
    for vertex in separate_audience:
        graph.add_edge(cliques["D"][0], vertex, 0.7)

    # Light bridges so the graph is connected.
    graph.add_edge(4, 5, 0.5)
    graph.add_edge(8, 9, 0.5)
    graph.add_edge(12, 13, 0.5)
    return graph


def main() -> None:
    graph = build_overlapping_network()
    engine = InfluentialCommunityEngine.build(graph)
    print(f"graph: |V| = {graph.num_vertices()}, |E| = {graph.num_edges()}\n")

    # ------------------------------------------------------------------ #
    # plain TopL-ICDE: the overlap problem
    # ------------------------------------------------------------------ #
    topl_query = make_topl_query({"sports"}, k=4, radius=1, theta=0.2, top_l=2)
    topl = engine.topl(topl_query)
    print("TopL-ICDE (independent ranking):")
    print(format_table(topl.summary_rows()))
    combined = diversity_score([c.influenced for c in topl])
    total = sum(c.score for c in topl)
    print(
        f"summed scores {total:.2f}, but combined (deduplicated) reach only {combined:.2f} "
        "— the two best communities influence mostly the same users\n"
    )

    # ------------------------------------------------------------------ #
    # DTopL-ICDE: three methods
    # ------------------------------------------------------------------ #
    dtopl_query = make_dtopl_query(
        {"sports"}, k=4, radius=1, theta=0.2, top_l=2, candidate_factor=3
    )

    rows = []
    started = time.perf_counter()
    greedy_wp = engine.dtopl(dtopl_query)
    rows.append(
        {
            "method": "Greedy_WP (lazy, Lemma 9)",
            "seconds": round(time.perf_counter() - started, 4),
            "diversity score": round(greedy_wp.diversity_score, 2),
            "gain evaluations": greedy_wp.increment_evaluations,
        }
    )

    started = time.perf_counter()
    greedy_wop = greedy_wop_dtopl(graph, dtopl_query, index=engine.index)
    rows.append(
        {
            "method": "Greedy_WoP (eager)",
            "seconds": round(time.perf_counter() - started, 4),
            "diversity score": round(greedy_wop.diversity_score, 2),
            "gain evaluations": greedy_wop.increment_evaluations,
        }
    )

    started = time.perf_counter()
    optimal = optimal_dtopl(graph, dtopl_query, index=engine.index)
    rows.append(
        {
            "method": "Optimal (exhaustive)",
            "seconds": round(time.perf_counter() - started, 4),
            "diversity score": round(optimal.diversity_score, 2),
            "gain evaluations": optimal.increment_evaluations,
        }
    )

    print("DTopL-ICDE (diversified selection):")
    print(format_table(rows))
    print("\nselected by Greedy_WP:")
    print(format_table(greedy_wp.summary_rows()))

    accuracy = (
        greedy_wp.diversity_score / optimal.diversity_score if optimal.diversity_score else 1.0
    )
    print(
        f"\nGreedy_WP reaches {accuracy:.2%} of the optimal diversity score while "
        f"evaluating {greedy_wp.increment_evaluations} marginal gains "
        f"(Greedy_WoP needed {greedy_wop.increment_evaluations})."
    )
    print(
        "Note how the diversified selection pairs one 'shared audience' clique with the "
        "independent clique D instead of returning two overlapping cliques."
    )


if __name__ == "__main__":
    main()
