"""Gateway walkthrough: a build -> topl -> update -> topl HTTP round trip.

Starts an in-process :class:`repro.service.ServiceGateway`, then talks to it
purely over HTTP with :mod:`urllib` — exactly what a remote client would do.
Each step's request and response documents are captured as JSON transcripts
(the CI gateway-smoke job uploads them as an artifact)::

    PYTHONPATH=src python examples/gateway_walkthrough.py --out transcripts/

The script asserts the lifecycle invariants along the way: the update bumps
the engine epoch, and the post-update answer differs from a stale cache
(the epoch-tagged caches make serving a pre-update result impossible).

With ``--shards N`` the same walkthrough runs against the sharded serving
tier instead — a :class:`repro.service.ShardedCommunityService` (N worker
processes per session, ``--replicas`` read replicas each) behind the async
front door :class:`repro.service.AsyncServiceGateway`.  Every request,
response and assertion is unchanged: sharding is invisible on the wire.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from pathlib import Path

from repro.graph.datasets import uni
from repro.graph.io import graph_to_dict
from repro.query.params import make_topl_query
from repro.service.facade import CommunityService
from repro.service.gateway import ServiceGateway
from repro.service.schema import (
    BuildRequest,
    ToplRequest,
    UpdateRequest,
    query_to_wire,
)


def post(url: str, document: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(document).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=60) as response:
        return json.loads(response.read())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--vertices", type=int, default=150)
    parser.add_argument(
        "--out", default=None, help="directory for the JSON transcripts"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run against the sharded tier with this many worker processes "
        "per session (0 = the plain threaded gateway)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1, help="read replicas per shard"
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="build the session from a packed repro.store file instead of an "
        "inline graph document (exercises the mmap cold-start path)",
    )
    args = parser.parse_args(argv)

    transcripts: list[tuple[str, dict, dict]] = []

    def step(name: str, request_document: dict, response_document: dict) -> dict:
        transcripts.append((name, request_document, response_document))
        print(f"[{name}] -> epoch {response_document.get('epoch', '-')}")
        return response_document

    graph = uni(num_vertices=args.vertices, rng=7)
    query = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3)

    if args.shards > 0:
        from repro.service.agateway import AsyncServiceGateway
        from repro.service.sharded import ShardedCommunityService

        service = ShardedCommunityService(
            num_shards=args.shards, replicas=args.replicas, mode="process"
        )
        gateway_factory = lambda: AsyncServiceGateway(service, port=0)  # noqa: E731
        print(f"sharded tier: {args.shards} shards x {args.replicas} replicas")
    else:
        service = CommunityService()
        gateway_factory = lambda: ServiceGateway(service, port=0)  # noqa: E731

    store_dir = None
    store_path = None
    if args.store:
        # Pack the offline phase into a store file up front; the gateway
        # session then cold-starts from it (no offline phase server-side).
        import tempfile

        from repro.core.config import EngineConfig
        from repro.core.engine import InfluentialCommunityEngine
        from repro.store import pack_store

        store_dir = tempfile.TemporaryDirectory(prefix="repro-store-")
        store_path = str(Path(store_dir.name) / "walkthrough.repro-store")
        packed = InfluentialCommunityEngine.build(graph, config=EngineConfig(max_radius=2))
        info = pack_store(packed, store_path)
        print(f"packed store: {info['sections']} sections, {info['file_size']} bytes")

    with gateway_factory() as gateway:
        print(f"gateway listening on {gateway.url}")

        if args.store:
            build_doc = BuildRequest(
                session="walkthrough", store_path=store_path
            ).to_json()
        else:
            build_doc = BuildRequest(
                session="walkthrough",
                graph=graph_to_dict(graph),
                config={"max_radius": 2},
            ).to_json()
        build = step("build", build_doc, post(gateway.url + "/v1/build", build_doc))
        assert build["epoch"] == 0, build
        if args.store:
            provenance = build["engine"]["store"]
            assert provenance["store_backed"] and provenance["attached"], provenance
            assert provenance["residency"] == "mmap", provenance

        topl_doc = ToplRequest(query=query, session="walkthrough").to_json()
        before = step("topl", topl_doc, post(gateway.url + "/v1/topl", topl_doc))
        assert before["epoch"] == 0

        # Attach a strongly-influenced new user to the best community's
        # centre: the update must be visible in the next answer (the new
        # vertex joins g_inf, so the score changes — a stale cache hit
        # would be caught immediately).
        best = before["communities"][0]
        update_doc = UpdateRequest(session="walkthrough", edits=()).to_json()
        update_doc["edits"] = [
            {
                "op": "insert",
                "u": best["center"],
                "v": "walkthrough-new-user",
                "p_uv": 0.9,
                "p_vu": 0.9,
                "keywords_v": ["movies"],
            }
        ]
        update_doc["damage_threshold"] = 1.0
        update = step(
            "update", update_doc, post(gateway.url + "/v1/update", update_doc)
        )
        assert update["epoch"] == 1, update

        after = step("topl-after", topl_doc, post(gateway.url + "/v1/topl", topl_doc))
        assert after["epoch"] == 1
        assert after["communities"] != before["communities"], (
            "post-update answer identical to the pre-update one - stale cache?"
        )

        health = get(gateway.url + "/v1/health")
        transcripts.append(("health", {"query": query_to_wire(query)}, health))
        (session,) = [s for s in health["sessions"] if s["name"] == "walkthrough"]
        assert session["epoch"] == 1
        if args.store:
            # Still store-backed, but the update moved the engine past the
            # packed generation — provenance must say so.
            provenance = session["engine"]["store"]
            assert provenance["store_backed"], provenance
            assert not provenance["attached"], provenance
        if args.shards > 0:
            shards = session["shards"]
            assert shards["num_shards"] == args.shards, shards
            assert all(
                replica["alive"] and replica["epoch"] == 1
                for shard in shards["shards"]
                for replica in shard["replicas"]
            ), shards

    if args.shards > 0:
        service.close()
    if store_dir is not None:
        store_dir.cleanup()

    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for position, (name, request_document, response_document) in enumerate(
            transcripts
        ):
            path = out_dir / f"{position:02d}-{name}.json"
            path.write_text(
                json.dumps(
                    {"request": request_document, "response": response_document},
                    indent=2,
                )
            )
        print(f"{len(transcripts)} transcripts written to {out_dir}/")

    print("walkthrough OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
