#!/usr/bin/env python3
"""Dynamic graphs: apply an edit script and keep serving fresh answers.

Run with::

    python examples/dynamic_updates.py

The script walks through the dynamic-graph workflow:

1. build an engine over a community-structured network;
2. serve a query (and cache its result);
3. apply a batch of edge insertions/deletions with ``apply_updates`` — the
   engine maintains trussness incrementally and patches only the affected
   part of the index;
4. serve the same query again: the epoch-tagged caches guarantee the answer
   reflects the mutated graph;
5. show the damage-threshold fallback on a widely scattered batch.
"""

from __future__ import annotations

from repro import EngineConfig, InfluentialCommunityEngine, make_topl_query, random_update_batch
from repro.graph.generators import planted_community_graph
from repro.graph.keyword_assignment import assign_keywords


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. a planted-community network (the shape dynamic churn is local in)
    # ------------------------------------------------------------------ #
    graph = planted_community_graph(
        [40] * 20, intra_probability=0.12, inter_probability=0.00005, rng=11
    )
    assign_keywords(graph, keywords_per_vertex=3, domain_size=30, rng=11)
    engine = InfluentialCommunityEngine.build(
        graph, config=EngineConfig(max_radius=2, thresholds=(0.1, 0.2, 0.3)), validate=False
    )
    print(f"built over {graph.num_vertices()} vertices / {graph.num_edges()} edges")

    # ------------------------------------------------------------------ #
    # 2. serve once (the result lands in the epoch-tagged cache)
    # ------------------------------------------------------------------ #
    serving = engine.serve()
    keywords = frozenset(sorted(graph.keyword_domain())[:3])
    query = make_topl_query(keywords, k=3, radius=2, theta=0.1, top_l=3)
    before = serving.answer(query)
    print(f"pre-update answer: {[round(c.score, 2) for c in before]}")

    # ------------------------------------------------------------------ #
    # 3. localized churn around one community -> incremental patch
    # ------------------------------------------------------------------ #
    focus = next(iter(graph.vertices()))
    batch = random_update_batch(graph, 12, rng=7, focus=focus, focus_radius=1)
    report = engine.apply_updates(batch)
    print(
        f"applied {len(batch)} edits: mode={report.mode}, "
        f"affected {report.affected_vertices}/{report.total_vertices} centres "
        f"(damage {report.damage_ratio:.2%}), epoch {report.epoch}"
    )

    # ------------------------------------------------------------------ #
    # 4. the serving engine can never return the stale cached result
    # ------------------------------------------------------------------ #
    after = serving.answer(query)
    print(f"post-update answer: {[round(c.score, 2) for c in after]}")

    # ------------------------------------------------------------------ #
    # 5. scattered churn taints everything -> damage fallback rebuilds
    # ------------------------------------------------------------------ #
    scattered = random_update_batch(graph, 12, rng=9)
    report = engine.apply_updates(scattered)
    print(
        f"scattered batch: mode={report.mode} "
        f"(damage {report.damage_ratio:.2%} vs threshold {report.damage_threshold})"
    )


if __name__ == "__main__":
    main()
