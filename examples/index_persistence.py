#!/usr/bin/env python3
"""Offline/online split in practice: persist the index, reload, and compare baselines.

A production deployment runs the paper's two phases at different times: the
offline pre-computation happens once (or whenever the social network is
refreshed), while online queries arrive continuously.  This example shows

1. building the engine and saving its pre-computed index to disk,
2. reloading the index in a "fresh process" (here: a second engine instance)
   without re-running Algorithm 2,
3. answering the same query with the reloaded index, the ATindex baseline and
   a brute-force scan, and comparing their answers and work counters.

Run with::

    python examples/index_persistence.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import InfluentialCommunityEngine, make_topl_query
from repro.graph import datasets
from repro.query.baselines.atindex import ATIndex, atindex_topl
from repro.query.baselines.bruteforce import bruteforce_topl
from repro.workloads.reporting import format_table


def main() -> None:
    graph = datasets.zipf(num_vertices=700, rng=9)
    print(f"graph: {graph.name}  |V| = {graph.num_vertices()}  |E| = {graph.num_edges()}")

    # ------------------------------------------------------------------ #
    # offline phase + persistence
    # ------------------------------------------------------------------ #
    started = time.perf_counter()
    engine = InfluentialCommunityEngine.build(graph)
    build_seconds = time.perf_counter() - started

    with tempfile.TemporaryDirectory() as scratch:
        index_path = Path(scratch) / "zipf.index.json"
        engine.save_index(index_path)
        size_kb = index_path.stat().st_size / 1024

        started = time.perf_counter()
        reloaded = InfluentialCommunityEngine.from_saved_index(graph, index_path)
        reload_seconds = time.perf_counter() - started

    print(
        f"offline build: {build_seconds:.2f}s — saved index: {size_kb:.0f} KiB — "
        f"reload: {reload_seconds:.2f}s"
    )

    # ------------------------------------------------------------------ #
    # one query, three methods
    # ------------------------------------------------------------------ #
    query = make_topl_query({"movies", "books", "food"}, k=3, radius=2, theta=0.2, top_l=5)

    timings = []

    started = time.perf_counter()
    ours = reloaded.topl(query)
    timings.append(
        {
            "method": "TopL-ICDE (reloaded index)",
            "seconds": round(time.perf_counter() - started, 4),
            "communities": len(ours),
            "best score": round(ours.scores[0], 2) if ours.scores else 0.0,
            "candidates scored": ours.statistics.communities_scored,
        }
    )

    at_index = ATIndex.build(graph)
    started = time.perf_counter()
    baseline = atindex_topl(graph, query, index=at_index)
    timings.append(
        {
            "method": "ATindex baseline",
            "seconds": round(time.perf_counter() - started, 4),
            "communities": len(baseline),
            "best score": round(baseline.scores[0], 2) if baseline.scores else 0.0,
            "candidates scored": baseline.statistics.communities_scored,
        }
    )

    started = time.perf_counter()
    brute = bruteforce_topl(graph, query)
    timings.append(
        {
            "method": "brute force (no index)",
            "seconds": round(time.perf_counter() - started, 4),
            "communities": len(brute),
            "best score": round(brute.scores[0], 2) if brute.scores else 0.0,
            "candidates scored": brute.statistics.communities_scored,
        }
    )

    print()
    print(format_table(timings, title="same query, three methods"))

    agree = (
        [round(s, 6) for s in ours.scores]
        == [round(s, 6) for s in baseline.scores]
        == [round(s, 6) for s in brute.scores]
    )
    print(f"\nall three methods return the same top-L scores: {agree}")


if __name__ == "__main__":
    main()
